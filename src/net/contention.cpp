#include "net/contention.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "net/collective.hpp"

namespace temp::net {

void
LinkLoadMap::add(const Route &route, double bytes)
{
    for (LinkId link : route.links)
        loads_[link] += bytes;
}

void
LinkLoadMap::remove(const Route &route, double bytes)
{
    for (LinkId link : route.links) {
        loads_[link] -= bytes;
        if (loads_[link] < 0.0)
            loads_[link] = 0.0;
    }
}

LinkId
LinkLoadMap::maxLoadLink() const
{
    LinkId best = -1;
    double best_load = -1.0;
    for (LinkId link = 0; link < linkCount(); ++link) {
        if (loads_[link] > best_load) {
            best_load = loads_[link];
            best = link;
        }
    }
    return best;
}

double
LinkLoadMap::maxLoad() const
{
    double best = 0.0;
    for (double load : loads_)
        best = std::max(best, load);
    return best;
}

double
LinkLoadMap::totalLoad() const
{
    double total = 0.0;
    for (double load : loads_)
        total += load;
    return total;
}

int
LinkLoadMap::activeLinkCount() const
{
    int active = 0;
    for (double load : loads_)
        if (load > 0.0)
            ++active;
    return active;
}

namespace {

/**
 * Per-thread scratch for phase evaluation: a dense load vector plus the
 * list of links actually touched, so one phase costs O(flows * hops) to
 * clear instead of O(links) to allocate and zero. The invariant between
 * uses is "loads all zero", maintained by resetting exactly the touched
 * links before returning.
 */
struct PhaseScratch
{
    std::vector<double> loads;
    std::vector<LinkId> touched;

    void prepare(int link_count)
    {
        if (static_cast<int>(loads.size()) < link_count)
            loads.resize(link_count, 0.0);
        touched.clear();
    }

    void deposit(const Route &route, double bytes)
    {
        for (LinkId link : route.links) {
            if (loads[link] == 0.0)
                touched.push_back(link);
            loads[link] += bytes;
        }
    }

    void reset()
    {
        for (LinkId link : touched)
            loads[link] = 0.0;
    }
};

PhaseScratch &
phaseScratch()
{
    static thread_local PhaseScratch scratch;
    return scratch;
}

}  // namespace

ContentionModel::ContentionModel(const hw::Topology &topo,
                                 double link_bandwidth, double hop_latency_s)
    : topo_(topo), hop_latency_s_(hop_latency_s)
{
    snapshot([link_bandwidth](LinkId) { return link_bandwidth; });
}

ContentionModel::ContentionModel(const hw::Wafer &wafer, double hop_latency_s)
    : topo_(wafer.topology()), wafer_(&wafer),
      hop_latency_s_(hop_latency_s)
{
    snapshot([&wafer](LinkId link) { return wafer.linkBandwidth(link); });
    snapshot_epoch_.store(wafer.faultEpoch(), std::memory_order_release);
}

void
ContentionModel::snapshot(
    const std::function<double(LinkId)> &bandwidth_of) const
{
    link_bandwidth_.resize(topo_.linkCount());
    fabric_capacity_ = 0.0;
    for (LinkId link = 0; link < topo_.linkCount(); ++link) {
        link_bandwidth_[link] = bandwidth_of(link);
        fabric_capacity_ += link_bandwidth_[link];
    }
}

void
ContentionModel::refresh() const
{
    if (wafer_ == nullptr)
        return;
    const std::uint64_t epoch = wafer_->faultEpoch();
    if (epoch == snapshot_epoch_.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(rebuild_mutex_);
    if (epoch == snapshot_epoch_.load(std::memory_order_acquire))
        return;
    snapshot(
        [this](LinkId link) { return wafer_->linkBandwidth(link); });
    snapshot_epoch_.store(epoch, std::memory_order_release);
}

PhaseTiming
ContentionModel::evaluate(std::span<const Flow> flows) const
{
    PhaseTiming timing;
    if (flows.empty())
        return timing;
    refresh();

    PhaseScratch &scratch = phaseScratch();
    scratch.prepare(topo_.linkCount());
    for (const Flow &flow : flows) {
        if (flow.bytes <= 0.0)
            continue;
        scratch.deposit(*flow.route, flow.bytes);
        timing.total_bytes += flow.bytes;
        timing.link_bytes += flow.bytes * flow.route.hops();
        timing.max_hops = std::max(timing.max_hops, flow.route.hops());
    }

    // Drain time of the most congested link dictates the bandwidth term.
    // Touched links are scanned in id order so tie-breaking matches the
    // former dense scan.
    std::sort(scratch.touched.begin(), scratch.touched.end());
    double worst = 0.0;
    for (LinkId link : scratch.touched) {
        const double load = scratch.loads[link];
        const double bw = link_bandwidth_[link];
        if (bw <= 0.0)
            panic("ContentionModel: flow routed over dead link %d", link);
        const double drain = load / bw;
        if (drain > worst) {
            worst = drain;
            timing.bottleneck_link = link;
            timing.bottleneck_bytes = load;
        }
    }
    scratch.reset();
    timing.serial_time_s = worst;
    timing.time_s = worst + timing.max_hops * hop_latency_s_;

    // Aggregate utilisation: bytes-hops actually moved vs. what the whole
    // fabric could move during the phase.
    if (timing.time_s > 0.0 && fabric_capacity_ > 0.0) {
        timing.bandwidth_utilization =
            timing.link_bytes / (fabric_capacity_ * timing.time_s);
    }
    return timing;
}

namespace {

/// Folds one phase's timing into a running sequence total.
void
accumulatePhase(PhaseTiming &total, const PhaseTiming &t,
                double fabric_capacity, double &busy_capacity_time)
{
    total.time_s += t.time_s;
    total.serial_time_s += t.serial_time_s;
    total.total_bytes += t.total_bytes;
    total.link_bytes += t.link_bytes;
    total.max_hops = std::max(total.max_hops, t.max_hops);
    if (t.bottleneck_bytes > total.bottleneck_bytes) {
        total.bottleneck_bytes = t.bottleneck_bytes;
        total.bottleneck_link = t.bottleneck_link;
    }
    busy_capacity_time += t.time_s * fabric_capacity;
}

}  // namespace

PhaseTiming
ContentionModel::evaluateSequence(const CommSchedule &schedule) const
{
    refresh();
    PhaseTiming total;
    double busy_capacity_time = 0.0;
    for (int r = 0; r < schedule.roundCount(); ++r) {
        accumulatePhase(total, evaluate(schedule.round(r)),
                        fabric_capacity_, busy_capacity_time);
    }
    if (busy_capacity_time > 0.0)
        total.bandwidth_utilization = total.link_bytes / busy_capacity_time;
    return total;
}

PhaseTiming
ContentionModel::evaluateSequence(
    const std::vector<std::vector<Flow>> &phases) const
{
    refresh();
    PhaseTiming total;
    double busy_capacity_time = 0.0;
    for (const auto &phase : phases) {
        accumulatePhase(total, evaluate(phase), fabric_capacity_,
                        busy_capacity_time);
    }
    if (busy_capacity_time > 0.0)
        total.bandwidth_utilization = total.link_bytes / busy_capacity_time;
    return total;
}

double
ContentionModel::flowTime(const Flow &flow) const
{
    if (flow.bytes <= 0.0 || flow.route.empty())
        return 0.0;
    refresh();
    double min_bw = link_bandwidth_[flow.route.links().front()];
    for (LinkId link : flow.route.links())
        min_bw = std::min(min_bw, link_bandwidth_[link]);
    if (min_bw <= 0.0)
        panic("ContentionModel::flowTime: dead link on route");
    return flow.bytes / min_bw + flow.route.hops() * hop_latency_s_;
}

}  // namespace temp::net
