#include "tcme/mapping_policy.hpp"

#include <algorithm>

namespace temp::tcme {

using parallel::Axis;

const char *
mappingEngineName(MappingEngineKind kind)
{
    switch (kind) {
      case MappingEngineKind::SMap: return "SMap";
      case MappingEngineKind::GMap: return "GMap";
      case MappingEngineKind::TCME: return "TCME";
    }
    return "?";
}

std::vector<Axis>
MappingPolicy::axisOrder(const AxisVolumes &volumes) const
{
    switch (kind) {
      case MappingEngineKind::SMap: return smapOrder();
      case MappingEngineKind::GMap: return gmapOrder(volumes);
      case MappingEngineKind::TCME: return tcmeOrder(volumes);
    }
    return smapOrder();
}

std::vector<Axis>
MappingPolicy::smapOrder()
{
    // Fixed priority order: data-parallel groups packed tightly first,
    // tensor-stream chains last — what a GPU-centric mapper would do.
    return {Axis::DP, Axis::FSDP, Axis::TP, Axis::SP, Axis::CP, Axis::TATP};
}

namespace {

std::vector<Axis>
byVolumeDescending(const AxisVolumes &volumes, std::vector<Axis> axes)
{
    std::stable_sort(axes.begin(), axes.end(), [&](Axis a, Axis b) {
        return volumes[static_cast<std::size_t>(a)] >
               volumes[static_cast<std::size_t>(b)];
    });
    return axes;
}

}  // namespace

std::vector<Axis>
MappingPolicy::gmapOrder(const AxisVolumes &volumes)
{
    // Highest-traffic axis innermost: minimises expected hops but knows
    // nothing about link contention or stream chains.
    return byVolumeDescending(volumes,
                              {Axis::DP, Axis::FSDP, Axis::TP, Axis::SP,
                               Axis::CP, Axis::TATP});
}

std::vector<Axis>
MappingPolicy::tcmeOrder(const AxisVolumes &volumes)
{
    // TATP chains must be physically contiguous (Sec. V): pin TATP
    // innermost; order the rest by volume.
    std::vector<Axis> rest = byVolumeDescending(
        volumes, {Axis::TP, Axis::SP, Axis::CP, Axis::FSDP, Axis::DP});
    std::vector<Axis> order{Axis::TATP};
    order.insert(order.end(), rest.begin(), rest.end());
    return order;
}

}  // namespace temp::tcme
