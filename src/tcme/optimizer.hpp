/**
 * @file
 * Traffic-conscious communication optimizer (Sec. VI-B, Fig. 11).
 *
 * Implements the paper's five-phase workflow over a schedule of flow
 * rounds:
 *  (1) communication pattern analysis & path initialisation — flows
 *      arrive with contention-agnostic routes (XY);
 *  (2) bottleneck identification & load recording — find the most
 *      congested link (mcl) and its load;
 *  (3) congested path identification & iterative optimisation — collect
 *      the flows crossing the mcl;
 *  (4) path merging & routing optimisation — merge duplicate payloads
 *      into multicast trees and reroute remaining flows over idle links
 *      (YX / one-bend detours);
 *  (5) global update & termination check — stop when the bottleneck
 *      stops improving or MAX_ITER is reached.
 */
#pragma once

#include "net/collective.hpp"
#include "net/contention.hpp"
#include "net/route.hpp"

namespace temp::tcme {

/// Outcome statistics of one optimisation run.
struct OptimizationStats
{
    double initial_max_load = 0.0;  ///< bottleneck bytes before
    double final_max_load = 0.0;    ///< bottleneck bytes after
    int iterations = 0;
    int reroutes = 0;   ///< flows moved to alternative routes
    int merges = 0;     ///< duplicate flows folded into multicast trees
    int phases = 0;     ///< rounds processed

    /// Bottleneck-load improvement factor (>= 1).
    double improvement() const
    {
        return final_max_load > 0.0 ? initial_max_load / final_max_load
                                    : 1.0;
    }
};

/// The Fig. 11(d) optimizer.
class TrafficOptimizer
{
  public:
    /// Tuning knobs; defaults follow the paper's algorithm sketch.
    struct Config
    {
        int max_iters = 16;
        bool enable_merging = true;
        bool enable_rerouting = true;
    };

    /// Constructs with default configuration.
    explicit TrafficOptimizer(const net::Router &router);

    TrafficOptimizer(const net::Router &router, Config config);

    /**
     * Optimises every round of a schedule in place (rounds execute
     * back-to-back, so each is an independent contention domain).
     */
    OptimizationStats optimize(net::CommSchedule &schedule) const;

    /// Optimises one phase (set of concurrent flows) in place.
    OptimizationStats optimizePhase(std::vector<net::Flow> &flows) const;

  private:
    /// Replaces duplicate-payload flows through the bottleneck with a
    /// multicast tree; returns the number of merges performed.
    int mergeDuplicates(std::vector<net::Flow> &flows,
                        net::LinkLoadMap &loads, hw::LinkId mcl) const;

    /// Reroutes bottleneck flows onto less-loaded candidate routes;
    /// returns the number of flows moved.
    int rerouteCongested(std::vector<net::Flow> &flows,
                         net::LinkLoadMap &loads, hw::LinkId mcl) const;

    const net::Router &router_;
    Config config_;
};

}  // namespace temp::tcme
