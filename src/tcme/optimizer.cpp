#include "tcme/optimizer.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>

#include "common/logging.hpp"

namespace temp::tcme {

using net::Flow;
using net::LinkLoadMap;
using net::Route;

TrafficOptimizer::TrafficOptimizer(const net::Router &router)
    : TrafficOptimizer(router, Config())
{
}

TrafficOptimizer::TrafficOptimizer(const net::Router &router, Config config)
    : router_(router), config_(config)
{
}

OptimizationStats
TrafficOptimizer::optimize(net::CommSchedule &schedule) const
{
    OptimizationStats total;
    // The arena is rebuilt round by round through a reused scratch
    // vector: path merging can change a round's flow count, so rounds
    // cannot be rewritten in place. Flow copies are RouteRef-cheap.
    std::vector<net::Flow> rebuilt;
    rebuilt.reserve(schedule.flowCount());
    std::vector<std::uint32_t> round_end;
    round_end.reserve(schedule.roundCount());
    std::vector<net::Flow> scratch;
    for (int r = 0; r < schedule.roundCount(); ++r) {
        const std::span<const net::Flow> round = schedule.round(r);
        scratch.assign(round.begin(), round.end());
        const OptimizationStats s = optimizePhase(scratch);
        total.initial_max_load = std::max(total.initial_max_load,
                                          s.initial_max_load);
        total.final_max_load = std::max(total.final_max_load,
                                        s.final_max_load);
        total.iterations += s.iterations;
        total.reroutes += s.reroutes;
        total.merges += s.merges;
        ++total.phases;
        rebuilt.insert(rebuilt.end(), scratch.begin(), scratch.end());
        round_end.push_back(static_cast<std::uint32_t>(rebuilt.size()));
    }
    schedule.assign(std::move(rebuilt), std::move(round_end));
    // The optimized schedule goes straight to contention evaluation;
    // hand it the SoA deposit path.
    schedule.finalize();
    return total;
}

OptimizationStats
TrafficOptimizer::optimizePhase(std::vector<Flow> &flows) const
{
    OptimizationStats stats;
    stats.phases = 1;
    if (flows.empty())
        return stats;

    // Phase 1 happened upstream (flows carry initial routes). Build the
    // load picture.
    LinkLoadMap loads(router_.topology().linkCount());
    for (const Flow &flow : flows)
        loads.add(flow.route, flow.bytes);

    // Phase 2: bottleneck identification.
    hw::LinkId mcl = loads.maxLoadLink();
    double cur = loads.load(mcl);
    stats.initial_max_load = cur;
    double prev = 2.0 * cur;

    // Phases 3-5: iterate while the bottleneck keeps improving.
    while (cur < prev && cur > 0.0) {
        if (stats.iterations >= config_.max_iters)
            break;
        prev = cur;
        ++stats.iterations;

        if (config_.enable_merging)
            stats.merges += mergeDuplicates(flows, loads, mcl);
        if (config_.enable_rerouting)
            stats.reroutes += rerouteCongested(flows, loads, mcl);

        mcl = loads.maxLoadLink();
        cur = loads.load(mcl);
    }
    stats.final_max_load = loads.maxLoad();
    return stats;
}

int
TrafficOptimizer::mergeDuplicates(std::vector<Flow> &flows,
                                  LinkLoadMap &loads, hw::LinkId mcl) const
{
    // Duplicate payloads: same source, tag and size crossing the
    // bottleneck toward different destinations (e.g. a broadcast that
    // was lowered to unicasts). Fold them into one multicast tree.
    struct Key
    {
        hw::DieId src;
        int tag;
        long long bytes_q;
        bool operator<(const Key &o) const
        {
            if (src != o.src)
                return src < o.src;
            if (tag != o.tag)
                return tag < o.tag;
            return bytes_q < o.bytes_q;
        }
    };
    std::map<Key, std::vector<std::size_t>> buckets;
    for (std::size_t i = 0; i < flows.size(); ++i) {
        const Flow &f = flows[i];
        const auto &links = f.route.links();
        const bool crosses =
            std::find(links.begin(), links.end(), mcl) != links.end();
        if (!crosses)
            continue;
        buckets[Key{f.src, f.tag,
                    static_cast<long long>(f.bytes)}].push_back(i);
    }

    int merges = 0;
    std::vector<std::size_t> to_remove;
    std::vector<Flow> to_add;
    for (const auto &[key, idxs] : buckets) {
        if (idxs.size() < 2)
            continue;
        // Build a multicast tree covering all destinations.
        std::vector<hw::DieId> leaves;
        for (std::size_t i : idxs)
            leaves.push_back(flows[i].dst);
        const net::MulticastTree tree =
            net::buildMulticastTree(router_, key.src, leaves);
        if (!tree.complete)
            continue;  // faults block a fault-free tree; keep unicasts
        // Tree payload: one copy per tree link instead of one per flow.
        const double bytes = flows[idxs[0]].bytes;
        double before = 0.0;
        for (std::size_t i : idxs)
            before += bytes * flows[i].route.hops();
        const double after = bytes * static_cast<double>(tree.links.size());
        if (after >= before)
            continue;  // no savings; keep unicasts

        for (std::size_t i : idxs) {
            loads.remove(flows[i].route, flows[i].bytes);
            to_remove.push_back(i);
        }
        for (hw::LinkId link : tree.links) {
            Flow branch;
            const hw::Link &l = router_.topology().link(link);
            branch.src = l.src;
            branch.dst = l.dst;
            branch.bytes = bytes;
            branch.tag = key.tag;
            branch.route = router_.linkRoute(link);
            loads.add(branch.route, branch.bytes);
            to_add.push_back(std::move(branch));
        }
        ++merges;
    }

    if (!to_remove.empty()) {
        std::sort(to_remove.begin(), to_remove.end(), std::greater<>());
        for (std::size_t i : to_remove)
            flows.erase(flows.begin() + i);
        flows.insert(flows.end(), to_add.begin(), to_add.end());
    }
    return merges;
}

int
TrafficOptimizer::rerouteCongested(std::vector<Flow> &flows,
                                   LinkLoadMap &loads, hw::LinkId mcl) const
{
    // Collect flows crossing the bottleneck, largest first (moving big
    // flows helps most).
    std::vector<std::size_t> hot;
    for (std::size_t i = 0; i < flows.size(); ++i) {
        const auto &links = flows[i].route.links();
        if (std::find(links.begin(), links.end(), mcl) != links.end())
            hot.push_back(i);
    }
    std::sort(hot.begin(), hot.end(), [&](std::size_t a, std::size_t b) {
        return flows[a].bytes > flows[b].bytes;
    });

    int reroutes = 0;
    for (std::size_t i : hot) {
        Flow &flow = flows[i];
        loads.remove(flow.route, flow.bytes);

        // Current route's worst-link load once this flow is added back.
        auto route_peak = [&](const net::RouteRef &r) {
            double peak = 0.0;
            for (hw::LinkId link : r.links())
                peak = std::max(peak, loads.load(link) + flow.bytes);
            return peak;
        };

        // Candidates come from the router's pooled memo, so the reroute
        // loop allocates nothing per flow.
        const std::shared_ptr<const std::vector<net::RouteRef>> candidates =
            router_.candidateRouteRefs(flow.src, flow.dst);
        net::RouteRef best = flow.route;
        double best_peak = route_peak(flow.route);
        for (const net::RouteRef &cand : *candidates) {
            const double peak = route_peak(cand);
            if (peak < best_peak) {
                best_peak = peak;
                best = cand;
            }
        }
        if (!best.sameLinks(flow.route)) {
            flow.route = best;
            ++reroutes;
        }
        loads.add(flow.route, flow.bytes);
    }
    return reroutes;
}

}  // namespace temp::tcme
