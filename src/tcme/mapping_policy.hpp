/**
 * @file
 * Mapping-engine policies: how parallel axes are ordered onto the wafer
 * and whether the traffic optimizer runs.
 *
 * The paper's baselines (Sec. VIII-A):
 *  - SMap: "a baseline sequential mapper with a fixed parallel strategy
 *    order" — a fixed, tensor-stream-oblivious axis order, XY routes,
 *    no contention handling;
 *  - GMap: "a WSC-adapted implementation of the Gemini mapper" —
 *    variable ordering chosen greedily by per-axis traffic volume, but
 *    no spatial contention awareness;
 *  - TCME: the paper's engine — topology-aware order (TATP innermost so
 *    stream chains are physically contiguous) plus the five-phase
 *    traffic-conscious optimizer.
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "parallel/spec.hpp"

namespace temp::tcme {

/// Which mapping engine drives layout and routing decisions.
enum class MappingEngineKind
{
    SMap,
    GMap,
    TCME,
};

/// Returns the printable engine name.
const char *mappingEngineName(MappingEngineKind kind);

/// Per-axis communication volume estimates (bytes), used by GMap/TCME
/// to choose orderings.
using AxisVolumes =
    std::array<double, static_cast<std::size_t>(parallel::Axis::Count)>;

/// A mapping policy = axis order + whether contention optimisation runs.
struct MappingPolicy
{
    MappingEngineKind kind = MappingEngineKind::TCME;

    /// True when the five-phase traffic optimizer should run.
    bool contentionOptimization() const
    {
        return kind == MappingEngineKind::TCME;
    }

    /**
     * Inner-to-outer axis order for the GroupLayout.
     *
     * @param volumes Estimated per-axis traffic (GMap/TCME rank by it).
     */
    std::vector<parallel::Axis> axisOrder(const AxisVolumes &volumes) const;

    /// SMap's fixed order: DP innermost (the naive priority order),
    /// TATP outermost — oblivious to stream-chain contiguity.
    static std::vector<parallel::Axis> smapOrder();

    /// GMap's greedy order: highest-volume axis innermost (hop-aware but
    /// contention-agnostic).
    static std::vector<parallel::Axis> gmapOrder(const AxisVolumes &volumes);

    /// TCME's topology-aware order: TATP pinned innermost, remaining
    /// axes by descending volume.
    static std::vector<parallel::Axis> tcmeOrder(const AxisVolumes &volumes);
};

}  // namespace temp::tcme
