#include "scenario/scenario.hpp"

#include <algorithm>
#include <chrono>

#include "common/rng.hpp"

namespace temp::scenario {

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::uint64_t
foldU64(std::uint64_t hash, std::uint64_t value)
{
    return fnv1a(hash, &value, sizeof(value));
}

std::uint64_t
foldF64(std::uint64_t hash, double value)
{
    // Bit pattern, not text rendering: bit-identical replay is the
    // claim, so the digest must see every mantissa bit.
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    return foldU64(hash, bits);
}

}  // namespace

const char *
eventKindName(Event::Kind kind)
{
    switch (kind) {
    case Event::Kind::SetFaults: return "set_faults";
    case Event::Kind::ClearFaults: return "clear_faults";
    case Event::Kind::ModelSwitch: return "model_switch";
    case Event::Kind::Reoptimize: return "reoptimize";
    case Event::Kind::WaferJoin: return "wafer_join";
    case Event::Kind::WaferLeave: return "wafer_leave";
    }
    return "unknown";
}

bool
eventKindFromName(const std::string &name, Event::Kind *kind)
{
    if (name == "set_faults")
        *kind = Event::Kind::SetFaults;
    else if (name == "clear_faults")
        *kind = Event::Kind::ClearFaults;
    else if (name == "model_switch")
        *kind = Event::Kind::ModelSwitch;
    else if (name == "reoptimize")
        *kind = Event::Kind::Reoptimize;
    else if (name == "wafer_join")
        *kind = Event::Kind::WaferJoin;
    else if (name == "wafer_leave")
        *kind = Event::Kind::WaferLeave;
    else
        return false;
    return true;
}

std::uint64_t
foldEventReport(std::uint64_t hash, const EventReport &r)
{
    hash = foldU64(hash, static_cast<std::uint64_t>(r.index));
    hash = foldF64(hash, r.at_s);
    hash = foldU64(hash, static_cast<std::uint64_t>(r.kind));
    hash = foldU64(hash, static_cast<std::uint64_t>(r.step_sims));
    hash = foldU64(hash,
                   static_cast<std::uint64_t>(r.matrix_measurements));
    hash = foldU64(hash, static_cast<std::uint64_t>(r.step_cache_hits));
    hash =
        foldU64(hash, static_cast<std::uint64_t>(r.matrix_cache_hits));
    hash = foldF64(hash, r.throughput_before);
    hash = foldF64(hash, r.throughput_after);
    hash = foldF64(hash, r.step_time_s);
    hash = foldU64(hash, static_cast<std::uint64_t>(r.usable_dies));
    hash = foldU64(hash, static_cast<std::uint64_t>(r.failed_links));
    hash = foldU64(hash, static_cast<std::uint64_t>(r.wafer_count));
    hash = foldU64(hash, r.fault_fingerprint);
    const std::uint64_t flags =
        (r.resolved ? 1u : 0u) | (r.warm_seeded ? 2u : 0u) |
        (r.context_reused ? 4u : 0u) |
        (r.fallback_to_last_feasible ? 8u : 0u) |
        (r.budget_exhausted ? 16u : 0u);
    hash = foldU64(hash, flags);
    hash = foldU64(hash, static_cast<std::uint64_t>(r.quanta_used));
    hash = fnv1a(hash, r.degradation.data(), r.degradation.size());
    hash = foldU64(hash, r.degradation.size());
    // recovery_wall_s deliberately excluded: it is the one
    // nondeterministic field of the report.
    return hash;
}

ScenarioEngine::ScenarioEngine(
    std::shared_ptr<core::TempFramework> framework)
    : ScenarioEngine(std::move(framework), Options{})
{
}

ScenarioEngine::ScenarioEngine(
    std::shared_ptr<core::TempFramework> framework, Options options)
    : framework_(std::move(framework)), options_(options)
{
}

std::shared_ptr<core::DegradedContext>
ScenarioEngine::contextFor(const hw::FaultMap &faults, bool *reused)
{
    const std::uint64_t fp = faults.contentFingerprint();
    for (std::size_t i = 0; i < contexts_.size(); ++i) {
        if (contexts_[i]->fingerprint() == fp) {
            // MRU bump: revisited storms stay resident.
            std::shared_ptr<core::DegradedContext> hit = contexts_[i];
            contexts_.erase(contexts_.begin() +
                            static_cast<std::ptrdiff_t>(i));
            contexts_.insert(contexts_.begin(), hit);
            *reused = true;
            return hit;
        }
    }
    *reused = false;
    std::shared_ptr<core::DegradedContext> built =
        framework_->degradedContext(faults);
    contexts_.insert(contexts_.begin(), built);
    const std::size_t cap =
        options_.max_contexts > 0
            ? static_cast<std::size_t>(options_.max_contexts)
            : 1;
    if (contexts_.size() > cap)
        contexts_.resize(cap);
    return built;
}

ScenarioEngine::SolveOutcome
ScenarioEngine::resolveCurrent(bool allow_warm)
{
    SolveOutcome out;
    const bool warm =
        allow_warm && options_.warm_seed && has_feasible_;
    if (faults_.healthy()) {
        // The healthy state is served by the framework itself: its
        // shared memo stack makes a repeat healthy solve free (zero
        // step sims, zero matrix measurements), which is stronger
        // than any warm seeding.
        out.result =
            framework_->optimize(model_, options_.solve_budget);
        return out;
    }
    std::shared_ptr<core::DegradedContext> ctx =
        contextFor(faults_, &out.context_reused);
    if (warm) {
        solver::SolveHints hints;
        hints.seed_specs = last_feasible_specs_;
        hints.uniform_top_k = options_.uniform_top_k;
        out.result =
            ctx->optimize(model_, &hints, options_.solve_budget);
        out.warm_seeded = true;
    } else {
        out.result =
            ctx->optimize(model_, nullptr, options_.solve_budget);
    }
    return out;
}

ScenarioReport
ScenarioEngine::replay(const model::ModelConfig &initial_model,
                       const std::vector<Event> &events)
{
    const hw::Wafer &healthy = framework_->wafer();
    model_ = initial_model;
    faults_ = hw::FaultMap(healthy.dieCount(),
                           healthy.topology().linkCount());
    wafer_count_ = 1;
    last_feasible_specs_.clear();
    last_feasible_report_ = sim::PerfReport{};
    has_feasible_ = false;
    contexts_.clear();

    ScenarioReport report;
    report.replay_digest = 14695981039346656037ULL;

    // Baseline: the service is operating on the healthy wafer before
    // the timeline starts (memo-shared with every other request).
    const solver::SolverResult base =
        framework_->optimize(model_, options_.solve_budget);
    double per_wafer_tput = 0.0;
    int usable_dies = healthy.usableDieCount();
    if (base.feasible) {
        last_feasible_specs_ = base.per_op_specs;
        last_feasible_report_ = base.report;
        has_feasible_ = true;
        per_wafer_tput = base.report.throughput_tokens_per_s;
    }

    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &event = events[i];
        EventReport er;
        er.index = static_cast<int>(i);
        er.at_s = event.at_s;
        er.kind = event.kind;
        er.throughput_before = per_wafer_tput * wafer_count_;

        const double t0 = now();
        bool solve_needed = false;
        bool allow_warm = true;
        switch (event.kind) {
        case Event::Kind::SetFaults: {
            // The FaultRequest draw (one RNG, links first, cores
            // second), merged into the accumulated storm state.
            hw::FaultMap drawn(healthy.dieCount(),
                               healthy.topology().linkCount());
            Rng rng(event.fault_seed);
            if (event.link_fault_rate > 0.0)
                drawn = hw::FaultMap::randomLinkFaults(
                    healthy.topology(), event.link_fault_rate, rng);
            if (event.core_fault_rate > 0.0) {
                const hw::FaultMap cores =
                    hw::FaultMap::randomCoreFaults(
                        healthy.topology(), event.core_fault_rate,
                        rng);
                for (hw::DieId die = 0; die < healthy.dieCount();
                     ++die)
                    drawn.setCoreFaultFraction(
                        die, cores.coreFaultFraction(die));
            }
            for (int die : event.kill_dies)
                if (die >= 0 && die < healthy.dieCount())
                    drawn.setCoreFaultFraction(die, 1.0);
            hw::FaultDelta delta;
            for (hw::LinkId link : drawn.failedLinks())
                if (!faults_.linkFailed(link))
                    delta.fail_links.push_back(link);
            for (hw::DieId die = 0; die < healthy.dieCount(); ++die) {
                const double want =
                    std::max(faults_.coreFaultFraction(die),
                             drawn.coreFaultFraction(die));
                if (want != faults_.coreFaultFraction(die))
                    delta.core_fractions.emplace_back(die, want);
            }
            faults_.applyDelta(delta);
            solve_needed = true;
            break;
        }
        case Event::Kind::ClearFaults:
            faults_ = hw::FaultMap(healthy.dieCount(),
                                   healthy.topology().linkCount());
            solve_needed = true;
            break;
        case Event::Kind::ModelSwitch:
            model_ = event.model;
            // The previous assignment indexes a different op chain;
            // it cannot seed the new model's search.
            last_feasible_specs_.clear();
            has_feasible_ = false;
            solve_needed = true;
            allow_warm = false;
            break;
        case Event::Kind::Reoptimize:
            solve_needed = true;
            break;
        case Event::Kind::WaferJoin:
            ++wafer_count_;
            break;
        case Event::Kind::WaferLeave:
            wafer_count_ = std::max(1, wafer_count_ - 1);
            break;
        }

        if (solve_needed) {
            SolveOutcome outcome = resolveCurrent(allow_warm);
            const solver::SolverResult &result = outcome.result;
            er.resolved = true;
            er.warm_seeded = outcome.warm_seeded;
            er.context_reused = outcome.context_reused;
            er.budget_exhausted = result.budget_exhausted;
            er.quanta_used = result.quanta_used;
            er.step_sims = result.step_sims;
            er.matrix_measurements = result.matrix_measurements;
            er.step_cache_hits = result.step_cache_hits;
            er.matrix_cache_hits = result.cache_hits;
            usable_dies = faults_.healthy()
                              ? healthy.usableDieCount()
                              : hw::Wafer(healthy.config(), faults_)
                                    .usableDieCount();
            if (result.feasible) {
                last_feasible_specs_ = result.per_op_specs;
                last_feasible_report_ = result.report;
                has_feasible_ = true;
                per_wafer_tput = result.report.throughput_tokens_per_s;
                er.step_time_s = result.report.step_time;
                er.degradation =
                    faults_.healthy() ? "healthy" : "degraded";
            } else {
                // Degraded-answer policy: never a silent wrong
                // answer. The engine keeps operating on the last
                // feasible assignment and says so explicitly.
                ++report.infeasible_events;
                er.degradation = "infeasible";
                if (has_feasible_) {
                    er.fallback_to_last_feasible = true;
                    ++report.fallback_events;
                    per_wafer_tput =
                        last_feasible_report_.throughput_tokens_per_s;
                    er.step_time_s = last_feasible_report_.step_time;
                } else {
                    per_wafer_tput = 0.0;
                    er.step_time_s = 0.0;
                }
            }
        } else {
            // Pod-membership events: the per-wafer plan is untouched;
            // only the aggregate operating point moves.
            er.degradation = !has_feasible_ ? "infeasible"
                             : faults_.healthy() ? "healthy"
                                                 : "degraded";
            er.step_time_s = has_feasible_
                                 ? last_feasible_report_.step_time
                                 : 0.0;
        }
        er.recovery_wall_s = now() - t0;
        er.throughput_after = per_wafer_tput * wafer_count_;
        er.usable_dies = usable_dies;
        er.failed_links = faults_.failedLinkCount();
        er.wafer_count = wafer_count_;
        er.fault_fingerprint = faults_.contentFingerprint();

        report.total_step_sims += er.step_sims;
        report.total_matrix_measurements += er.matrix_measurements;
        if (er.budget_exhausted)
            ++report.budget_exhausted_events;
        report.total_quanta += er.quanta_used;
        report.total_wall_s += er.recovery_wall_s;
        report.replay_digest =
            foldEventReport(report.replay_digest, er);
        report.events.push_back(std::move(er));
    }
    return report;
}

}  // namespace temp::scenario
