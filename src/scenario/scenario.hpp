/**
 * @file
 * The scenario engine: deterministic replay of a virtual-time event
 * timeline (fault storms, repairs, model-mix shifts, spot
 * re-optimisation, wafer churn) against a live framework — the
 * continuous-operation version of the paper's static fault-tolerance
 * story (Fig. 20, ROADMAP item 4).
 *
 * Event vocabulary:
 *  - set_faults: draw link/core faults from (rates, seed) — exactly the
 *    FaultRequest draw — and MERGE them into the current fault state
 *    (storms accumulate: link union, per-die max core fraction);
 *    kill_dies additionally bricks listed dies outright (fraction 1.0,
 *    no draw — the deterministic hard-failure event);
 *  - clear_faults: repair everything (back to the healthy wafer);
 *  - model_switch: change the model the service is training;
 *  - reoptimize: spot re-solve of the current (model, fault) state;
 *  - wafer_join / wafer_leave: a wafer joins/leaves the data-parallel
 *    pod (aggregate throughput scales with the pod size; the per-wafer
 *    plan is unchanged).
 *
 * Determinism contract: every EventReport field except the wall-clock
 * ones (recovery_wall_s) is a pure function of (initial request,
 * timeline). Replaying the same timeline with the same seed yields
 * bit-identical reports; replay_digest is an FNV-1a fold over the
 * deterministic fields so CI can assert it with one compare.
 *
 * Degraded-answer policy: when a re-solve is infeasible the engine
 * falls back to the last feasible assignment, sets
 * fallback_to_last_feasible and degradation == "infeasible" — the
 * fallback is explicit and flagged, never a silent wrong answer.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/framework.hpp"

namespace temp::scenario {

/// One timeline event (virtual time; replay is sequential).
struct Event
{
    enum class Kind
    {
        SetFaults,
        ClearFaults,
        ModelSwitch,
        Reoptimize,
        WaferJoin,
        WaferLeave,
    };

    Kind kind = Kind::Reoptimize;
    /// Virtual timestamp (seconds); informational — replay order is
    /// the timeline order.
    double at_s = 0.0;
    /// @{ set_faults payload: the FaultRequest draw (one RNG seeded
    /// with fault_seed, links first, cores second), merged into the
    /// current fault state.
    double link_fault_rate = 0.0;
    double core_fault_rate = 0.0;
    std::uint64_t fault_seed = 1;
    /// Dies bricked outright (core fraction 1.0, no draw) — the
    /// deterministic hard-failure event. Random draws deliberately
    /// clamp at 0.9 so a die stays usable; killing every die is the
    /// one way a timeline reaches a genuinely infeasible re-solve,
    /// which is exactly what the degraded-answer policy is for.
    std::vector<int> kill_dies;
    /// @}
    /// model_switch payload.
    model::ModelConfig model;
};

/// Wire/CLI name of an event kind ("set_faults", "clear_faults", ...).
const char *eventKindName(Event::Kind kind);

/// Parses an event-kind name; false when unknown.
bool eventKindFromName(const std::string &name, Event::Kind *kind);

/// The structured outcome of one replayed event.
struct EventReport
{
    int index = 0;      ///< position in the timeline
    double at_s = 0.0;  ///< the event's virtual timestamp
    Event::Kind kind = Event::Kind::Reoptimize;

    /// @{ Recovery cost of the event (zero when no re-solve ran).
    /// Wall-clock recovery time — the ONLY nondeterministic field
    /// (excluded from replay_digest).
    double recovery_wall_s = 0.0;
    /// Unique full-step simulations the re-solve spent.
    long step_sims = 0;
    /// Unique matrix measurements the re-solve spent (zero when the
    /// fault state's context — or the healthy framework — was warm).
    long matrix_measurements = 0;
    /// Memo-served queries (honest counterpart of the two above).
    long step_cache_hits = 0;
    long matrix_cache_hits = 0;
    /// @}

    /// @{ Operating point around the event (aggregate across the pod:
    /// per-wafer tokens/s x wafer_count).
    double throughput_before = 0.0;
    double throughput_after = 0.0;
    double step_time_s = 0.0;  ///< per-wafer step time of the plan
    /// @}

    /// @{ State after the event.
    int usable_dies = 0;
    int failed_links = 0;
    int wafer_count = 1;
    std::uint64_t fault_fingerprint = 0;  ///< hw content fingerprint
    /// @}

    /// @{ How the answer was produced.
    bool resolved = false;     ///< a re-solve ran for this event
    bool warm_seeded = false;  ///< previous assignment injected
    /// The re-solve hit its SolveBudget boundary and returned its
    /// best-so-far partial plan (bounded recovery). Deterministic when
    /// the budget is quantum-capped; a wall cap makes the trip point —
    /// and therefore this flag and quanta_used — wall-dependent.
    bool budget_exhausted = false;
    /// Budget quanta (full-step fitness queries) the re-solve charged.
    long quanta_used = 0;
    /// The re-solve reused an already-built degraded context (its
    /// memos survived since the fault state was last visited).
    bool context_reused = false;
    /// The re-solve was infeasible; the reported operating point is
    /// the last feasible assignment (explicit degraded answer).
    bool fallback_to_last_feasible = false;
    /// "healthy" | "degraded" | "infeasible".
    std::string degradation = "healthy";
    /// @}
};

/// The whole-run report.
struct ScenarioReport
{
    std::vector<EventReport> events;
    /// FNV-1a fold of every deterministic EventReport field, in
    /// timeline order — one compare asserts bit-identical replay.
    std::uint64_t replay_digest = 0;
    long total_step_sims = 0;
    long total_matrix_measurements = 0;
    int infeasible_events = 0;
    int fallback_events = 0;
    /// Events whose re-solve stopped at its SolveBudget boundary.
    int budget_exhausted_events = 0;
    /// Budget quanta charged across every re-solve in the replay.
    long total_quanta = 0;
    double total_wall_s = 0.0;  ///< nondeterministic (excluded above)
};

/// Folds one report's deterministic fields into an FNV-1a hash
/// (recovery_wall_s excluded). Exposed for tests.
std::uint64_t foldEventReport(std::uint64_t hash, const EventReport &r);

/**
 * Replays timelines against one framework. Holds a small pool of
 * degraded solve contexts keyed by fault-state content fingerprint, so
 * revisited fault states (a storm clearing, a repeated draw) reuse
 * every memo their epoch left valid; the healthy state is served by
 * the framework itself (its shared memo stack makes healthy re-solves
 * free). After each fault event the engine re-solves warm-seeded: the
 * previous feasible assignment joins the SearchEngine seed pool and
 * the uniform-seeding batch is capped (solver::SolveHints), so
 * recovery runs strictly fewer step sims than a cold solve of the
 * same event.
 */
class ScenarioEngine
{
  public:
    struct Options
    {
        /// Inject the previous assignment + cap uniform seeding on
        /// post-fault re-solves (false replays every event cold —
        /// the bench's comparison baseline).
        bool warm_seed = true;
        /// Uniform-seeding cap for warm re-solves
        /// (solver::SolveHints::uniform_top_k).
        int uniform_top_k = 8;
        /// Degraded contexts kept alive (LRU by last use).
        int max_contexts = 4;
        /// Per-event recovery budget: every re-solve the replay runs
        /// (including the initial baseline solve) is bounded by this
        /// SolveBudget, so a fault storm cannot stall the timeline on
        /// one open-ended search. Default (unlimited) preserves the
        /// historical behaviour. Quantum caps keep the replay digest
        /// deterministic; wall caps trade that for latency bounds.
        solver::SolveBudget solve_budget;
    };

    /// Defaulted Options (a separate overload: an NSDMI-carrying
    /// nested class cannot be a default argument in its encloser).
    explicit ScenarioEngine(
        std::shared_ptr<core::TempFramework> framework);
    ScenarioEngine(std::shared_ptr<core::TempFramework> framework,
                   Options options);

    /**
     * Replays the timeline in order against the framework, starting
     * from a healthy wafer, one pod wafer and a baseline solve of
     * @p initial_model. Deterministic modulo wall-clock fields.
     */
    ScenarioReport replay(const model::ModelConfig &initial_model,
                          const std::vector<Event> &events);

  private:
    struct SolveOutcome
    {
        solver::SolverResult result;
        bool warm_seeded = false;
        bool context_reused = false;
    };

    /// Re-solves the current (model, fault) state; warm-seeds when
    /// allowed and a previous feasible assignment exists.
    SolveOutcome resolveCurrent(bool allow_warm);

    /// The context serving the current fault state (build or reuse).
    std::shared_ptr<core::DegradedContext> contextFor(
        const hw::FaultMap &faults, bool *reused);

    std::shared_ptr<core::TempFramework> framework_;
    Options options_;

    /// @{ Replay state.
    model::ModelConfig model_;
    hw::FaultMap faults_;
    int wafer_count_ = 1;
    /// Last feasible assignment (the warm seed and the degraded-answer
    /// fallback) and its report.
    std::vector<parallel::ParallelSpec> last_feasible_specs_;
    sim::PerfReport last_feasible_report_;
    bool has_feasible_ = false;
    /// MRU-ordered degraded contexts, newest first.
    std::vector<std::shared_ptr<core::DegradedContext>> contexts_;
    /// @}
};

}  // namespace temp::scenario
