#include "model/operator.hpp"

namespace temp::model {

const char *
opTypeName(OpType type)
{
    switch (type) {
      case OpType::Gemm: return "gemm";
      case OpType::AttentionScore: return "attn-score";
      case OpType::AttentionContext: return "attn-context";
      case OpType::Softmax: return "softmax";
      case OpType::GeLU: return "gelu";
      case OpType::LayerNorm: return "layernorm";
      case OpType::Residual: return "residual";
    }
    return "?";
}

const char *
tpRoleName(TpRole role)
{
    switch (role) {
      case TpRole::ColumnParallel: return "column-parallel";
      case TpRole::RowParallel: return "row-parallel";
      case TpRole::HeadParallel: return "head-parallel";
      case TpRole::SequenceRegion: return "sequence-region";
    }
    return "?";
}

double
Operator::forwardFlops() const
{
    switch (type) {
      case OpType::Gemm:
      case OpType::AttentionScore:
      case OpType::AttentionContext:
        return 2.0 * b * m * n * k;
      case OpType::Softmax:
        // Online softmax: max, exp, sum, divide (Sec. VII-A operators).
        return 5.0 * b * m * n;
      case OpType::GeLU:
        return 8.0 * b * m * n;
      case OpType::LayerNorm:
        return 7.0 * b * m * n;
      case OpType::Residual:
        return b * m * n;
    }
    return 0.0;
}

double
Operator::backwardFlops() const
{
    // GEMMs run two GEMMs in backward (dI = dO x W^T, dW = I^T x dO);
    // element-wise operators recompute roughly their forward cost.
    if (isGemm())
        return 2.0 * forwardFlops();
    return forwardFlops();
}

double
Operator::arithmeticIntensity() const
{
    const double bytes = forwardDramBytes();
    return bytes > 0.0 ? forwardFlops() / bytes : 0.0;
}

}  // namespace temp::model
