#include "model/model_zoo.hpp"

#include "common/logging.hpp"

namespace temp::model {

double
ModelConfig::paramCount() const
{
    // Per layer: QKV (3h^2) + attention projection (h^2) + FC1/FC2
    // (2 * ffn_mult * h^2) + norms (~4h); plus token embeddings.
    const double h = static_cast<double>(hidden);
    const double per_layer =
        (4.0 + 2.0 * ffn_mult) * h * h + 4.0 * h;
    return layers * per_layer + static_cast<double>(vocab) * h;
}

ModelConfig
ModelConfig::withSeqBatch(int new_seq, int new_batch) const
{
    ModelConfig config = *this;
    config.seq = new_seq;
    config.batch = new_batch;
    return config;
}

namespace {

ModelConfig
make(const std::string &name, int heads, int batch, int hidden, int layers,
     int seq)
{
    ModelConfig config;
    config.name = name;
    config.heads = heads;
    config.batch = batch;
    config.hidden = hidden;
    config.layers = layers;
    config.seq = seq;
    return config;
}

}  // namespace

std::vector<ModelConfig>
evaluationModels()
{
    // Table II, verbatim.
    return {
        make("GPT-3 6.7B", 32, 128, 4096, 32, 2048),
        make("Llama2 7B", 32, 128, 4096, 32, 4096),
        make("Llama3 70B", 64, 128, 8192, 80, 4096),
        make("GPT-3 76B", 80, 128, 10240, 60, 2048),
        make("GPT-3 175B", 96, 128, 12288, 96, 2048),
        make("OPT 175B", 96, 128, 12288, 96, 4096),
    };
}

std::vector<ModelConfig>
multiWaferModels()
{
    // Sec. VIII-E; parameter counts chosen to match the cited sizes with
    // the dense-transformer parameter formula, with layer counts rounded
    // to values that admit the pipeline degrees of the Fig. 19 study
    // (pp in {wafers, 2 x wafers}).
    return {
        make("GPT-3 175B", 96, 128, 12288, 96, 2048),
        make("Grok-1 341B", 128, 128, 16128, 112, 8192),
        make("Llama3 405B", 128, 128, 16256, 128, 4096),
        make("GPT-3 504B", 144, 128, 18720, 120, 2048),
    };
}

std::vector<ModelConfig>
allModels()
{
    std::vector<ModelConfig> models = evaluationModels();
    for (const ModelConfig &m : multiWaferModels()) {
        bool exists = false;
        for (const ModelConfig &have : models)
            exists = exists || have.name == m.name;
        if (!exists)
            models.push_back(m);
    }
    return models;
}

bool
tryModelByName(const std::string &name, ModelConfig *out)
{
    for (const ModelConfig &m : allModels()) {
        if (m.name == name) {
            *out = m;
            return true;
        }
    }
    return false;
}

ModelConfig
modelByName(const std::string &name)
{
    ModelConfig model;
    if (!tryModelByName(name, &model))
        fatal("modelByName: unknown model '%s'", name.c_str());
    return model;
}

}  // namespace temp::model
