/**
 * @file
 * LLM model configurations: Table II of the paper plus the larger models
 * used in the multi-wafer scalability study (Sec. VIII-E).
 */
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace temp::model {

/// One LLM's architectural hyper-parameters (Table II columns).
struct ModelConfig
{
    std::string name;
    int heads = 32;
    int batch = 128;
    int hidden = 4096;
    int layers = 32;
    int seq = 2048;
    /// FFN expansion factor (intermediate = ffn_mult * hidden).
    int ffn_mult = 4;
    int vocab = 51200;

    /// Intermediate (FFN) dimension.
    int intermediate() const { return ffn_mult * hidden; }

    /// Head dimension.
    int headDim() const { return hidden / heads; }

    /// Approximate trainable parameter count.
    double paramCount() const;

    /// Parameter bytes at the given precision (FP16 weights by default).
    double paramBytes(double bytes_per_elem = kBytesFp16) const
    {
        return paramCount() * bytes_per_elem;
    }

    /// Variant with a different sequence length and batch size.
    ModelConfig withSeqBatch(int new_seq, int new_batch) const;
};

/// Looks a model up by name; fatal() on unknown names.
ModelConfig modelByName(const std::string &name);

/// Non-fatal lookup: false when the zoo has no model of that name
/// (servers degrade this to an error response instead of dying).
bool tryModelByName(const std::string &name, ModelConfig *out);

/// Table II models: GPT-3 6.7B/76B/175B, Llama2 7B, Llama3 70B, OPT 175B.
std::vector<ModelConfig> evaluationModels();

/// Multi-wafer study models: GPT-3 175B, Grok-1 341B, Llama3 405B,
/// GPT-3 504B.
std::vector<ModelConfig> multiWaferModels();

/// All named configurations known to the zoo.
std::vector<ModelConfig> allModels();

}  // namespace temp::model
