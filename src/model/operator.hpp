/**
 * @file
 * Operator taxonomy for transformer compute graphs (Fig. 12).
 *
 * Every operator is described with the paper's coordinate convention
 * (Sec. VI-A / Fig. 10): a GEMM-like operator computes
 *     O[B, M, K] = I[B, M, N] x W[N, K]
 * where B is the batch (including attention-head batching), M the
 * sequence, N the input-hidden and K the output-hidden dimension.
 * Element-wise operators reuse (B, M, N) as their tensor extent.
 */
#pragma once

#include <string>

#include "common/units.hpp"

namespace temp::model {

/// Operator kinds appearing in the supported transformer block.
enum class OpType
{
    Gemm,              ///< weighted linear layer (QKV, proj, FC1, FC2)
    AttentionScore,    ///< Q x K^T batched GEMM (activation-activation)
    AttentionContext,  ///< Score x V batched GEMM (activation-activation)
    Softmax,           ///< online softmax over attention scores
    GeLU,              ///< FFN non-linearity (GeLU/SiLU)
    LayerNorm,         ///< layer normalisation
    Residual,          ///< residual addition
};

/// Returns the printable operator-kind name.
const char *opTypeName(OpType type);

/**
 * How Megatron-style tensor parallelism treats this operator. Determines
 * which collectives TP injects and whether the op's output activation is
 * sharded or replicated across the TP group.
 */
enum class TpRole
{
    ColumnParallel,  ///< weight split along K; no fwd comm (QKV, FC1)
    RowParallel,     ///< weight split along N; fwd all-reduce (proj, FC2)
    HeadParallel,    ///< attention ops sharded across heads, no comm
    SequenceRegion,  ///< norm/residual region, replicated unless SP
};

/// Returns the printable TP-role name.
const char *tpRoleName(TpRole role);

/**
 * One operator instance with concrete dimensions.
 *
 * FLOP and byte counters cover the three training stages of Eq. (1):
 * forward, input-gradient backward and weight-gradient computation.
 */
struct Operator
{
    int id = 0;
    OpType type = OpType::Gemm;
    std::string name;

    /// Unified coordinates (see file comment).
    double b = 1.0;
    double m = 1.0;
    double n = 1.0;
    double k = 1.0;

    /// True for operators holding trainable parameters.
    bool has_weight = false;

    /// Megatron TP treatment of this operator (see TpRole).
    TpRole tp_role = TpRole::SequenceRegion;

    /**
     * True if a residual connection *closes* at this operator, i.e. the
     * graph may not be cut between the residual's source and this op.
     * The dual-level solver partitions only at residual-free boundaries.
     */
    bool closes_residual = false;

    /// True for matrix-multiply-shaped operators (dense compute).
    bool isGemm() const
    {
        return type == OpType::Gemm || type == OpType::AttentionScore ||
               type == OpType::AttentionContext;
    }

    /// FLOPs of the forward pass.
    double forwardFlops() const;

    /**
     * FLOPs of the backward pass (input gradients plus, for weighted
     * operators, weight gradients) — 2x forward for GEMMs, per Eq. (1).
     */
    double backwardFlops() const;

    /// Forward + backward FLOPs for one training step.
    double trainingFlops() const { return forwardFlops() + backwardFlops(); }

    /// Activation input bytes at the given precision.
    double inputBytes(double bytes_per_elem = kBytesFp16) const
    {
        return b * m * n * bytes_per_elem;
    }

    /// Parameter bytes (zero for weight-less operators).
    double weightBytes(double bytes_per_elem = kBytesFp16) const
    {
        return has_weight ? n * k * bytes_per_elem : 0.0;
    }

    /// Activation output bytes at the given precision.
    double outputBytes(double bytes_per_elem = kBytesFp16) const
    {
        return b * m * k * bytes_per_elem;
    }

    /// Total DRAM traffic of the forward pass (inputs + weights + outputs).
    double forwardDramBytes(double bytes_per_elem = kBytesFp16) const
    {
        return inputBytes(bytes_per_elem) + weightBytes(bytes_per_elem) +
               outputBytes(bytes_per_elem);
    }

    /// Arithmetic intensity (FLOPs per DRAM byte) of the forward pass.
    double arithmeticIntensity() const;
};

}  // namespace temp::model
