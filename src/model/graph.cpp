#include "model/graph.hpp"

namespace temp::model {

double
ComputeGraph::layerForwardFlops() const
{
    double total = 0.0;
    for (const Operator &op : ops_)
        total += op.forwardFlops();
    return total;
}

double
ComputeGraph::layerTrainingFlops() const
{
    double total = 0.0;
    for (const Operator &op : ops_)
        total += op.trainingFlops();
    return total;
}

double
ComputeGraph::layerWeightBytes() const
{
    double total = 0.0;
    for (const Operator &op : ops_)
        total += op.weightBytes();
    return total;
}

std::vector<int>
ComputeGraph::residualFreeCutPoints() const
{
    std::vector<int> cuts;
    for (int p = 1; p < opCount(); ++p) {
        bool crossed = false;
        for (const Edge &edge : edges_) {
            if (!edge.residual)
                continue;
            if (edge.from < p && edge.to >= p)
                crossed = true;
        }
        if (!crossed)
            cuts.push_back(p);
    }
    return cuts;
}

ComputeGraph
ComputeGraph::transformer(const ModelConfig &config)
{
    ComputeGraph graph;
    graph.config_ = config;
    graph.layer_count_ = config.layers;

    const double bsz = config.batch;
    const double seq = config.seq;
    const double h = config.hidden;
    const double heads = config.heads;
    const double hd = config.headDim();
    const double ffn = config.intermediate();

    int next_id = 0;
    auto add = [&](OpType type, const char *name, double b, double m,
                   double n, double k, bool has_weight, TpRole role,
                   bool closes_residual = false) {
        Operator op;
        op.id = next_id++;
        op.type = type;
        op.name = name;
        op.b = b;
        op.m = m;
        op.n = n;
        op.k = k;
        op.has_weight = has_weight;
        op.tp_role = role;
        op.closes_residual = closes_residual;
        graph.ops_.push_back(op);
        if (op.id > 0)
            graph.edges_.push_back(Edge{op.id - 1, op.id, false});
        return op.id;
    };

    // Multi-head attention block (ops 1-7 in Fig. 12a).
    const int ln1 = add(OpType::LayerNorm, "ln1", bsz, seq, h, h, false,
                        TpRole::SequenceRegion);
    add(OpType::Gemm, "qkv", bsz, seq, h, 3.0 * h, true,
        TpRole::ColumnParallel);
    add(OpType::AttentionScore, "qk^T", bsz * heads, seq, hd, seq, false,
        TpRole::HeadParallel);
    add(OpType::Softmax, "softmax", bsz * heads, seq, seq, seq, false,
        TpRole::HeadParallel);
    add(OpType::AttentionContext, "score*v", bsz * heads, seq, seq, hd,
        false, TpRole::HeadParallel);
    add(OpType::Gemm, "proj", bsz, seq, h, h, true, TpRole::RowParallel);
    const int res1 = add(OpType::Residual, "residual1", bsz, seq, h, h,
                         false, TpRole::SequenceRegion, true);
    graph.edges_.push_back(Edge{ln1, res1, true});

    // FFN block (ops 8-12).
    const int ln2 = add(OpType::LayerNorm, "ln2", bsz, seq, h, h, false,
                        TpRole::SequenceRegion);
    add(OpType::Gemm, "fc1", bsz, seq, h, ffn, true, TpRole::ColumnParallel);
    add(OpType::GeLU, "gelu", bsz, seq, ffn, ffn, false,
        TpRole::HeadParallel);
    add(OpType::Gemm, "fc2", bsz, seq, ffn, h, true, TpRole::RowParallel);
    const int res2 = add(OpType::Residual, "residual2", bsz, seq, h, h,
                         false, TpRole::SequenceRegion, true);
    graph.edges_.push_back(Edge{ln2, res2, true});

    return graph;
}

}  // namespace temp::model
