/**
 * @file
 * Transformer compute graphs (Fig. 12a).
 *
 * A graph holds the operators of one transformer layer plus the chain and
 * residual edges between them; the layer repeats `layerCount()` times.
 * Keeping a single representative layer keeps simulation and search cost
 * independent of model depth (all layers are identical).
 */
#pragma once

#include <vector>

#include "model/model_zoo.hpp"
#include "model/operator.hpp"

namespace temp::model {

/// A dependency edge between two operators.
struct Edge
{
    int from = 0;
    int to = 0;
    /// True for skip connections (residual adds close these).
    bool residual = false;
};

/// One transformer layer's operator chain plus its repeat count.
class ComputeGraph
{
  public:
    ComputeGraph() = default;

    const std::vector<Operator> &ops() const { return ops_; }
    const std::vector<Edge> &edges() const { return edges_; }
    const ModelConfig &config() const { return config_; }

    /// Number of identical layers the graph stands for.
    int layerCount() const { return layer_count_; }

    /// Number of operators in the representative layer.
    int opCount() const { return static_cast<int>(ops_.size()); }

    const Operator &op(int id) const { return ops_[id]; }

    /// Forward FLOPs of one layer.
    double layerForwardFlops() const;

    /// Forward+backward FLOPs of one layer.
    double layerTrainingFlops() const;

    /// Forward+backward FLOPs of the whole model (all layers).
    double totalTrainingFlops() const
    {
        return layerTrainingFlops() * layer_count_;
    }

    /// Parameter bytes in one layer (FP16).
    double layerWeightBytes() const;

    /**
     * Indices at which the chain can be cut without crossing a residual
     * edge (the graph-partition step of the DLS algorithm). A cut point p
     * means the chain may be split between ops p-1 and p.
     */
    std::vector<int> residualFreeCutPoints() const;

    /**
     * Builds the supported transformer block (Fig. 12a): LayerNorm, QKV,
     * Q*K^T, softmax, Score*V, projection, residual, LayerNorm, FC1,
     * GeLU, FC2, residual.
     */
    static ComputeGraph transformer(const ModelConfig &config);

  private:
    std::vector<Operator> ops_;
    std::vector<Edge> edges_;
    ModelConfig config_;
    int layer_count_ = 1;
};

}  // namespace temp::model
