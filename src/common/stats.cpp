#include "common/stats.hpp"

#include <cmath>
#include <cstdlib>

#include "common/logging.hpp"

namespace temp {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
pearsonCorrelation(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("pearsonCorrelation: length mismatch %zu vs %zu", xs.size(),
              ys.size());
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
meanAbsPercentError(const std::vector<double> &predicted,
                    const std::vector<double> &reference)
{
    if (predicted.size() != reference.size())
        panic("meanAbsPercentError: length mismatch %zu vs %zu",
              predicted.size(), reference.size());
    if (predicted.empty())
        return 0.0;
    double acc = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (reference[i] == 0.0)
            continue;
        acc += std::abs(predicted[i] - reference[i]) / std::abs(reference[i]);
        ++counted;
    }
    return counted == 0 ? 0.0 : 100.0 * acc / static_cast<double>(counted);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean: non-positive input %f", x);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    if (cols_ != other.rows_)
        panic("Matrix::multiply: inner dims %zu vs %zu", cols_, other.rows_);
    Matrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = at(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < other.cols_; ++j)
                out.at(i, j) += a * other.at(k, j);
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out.at(j, i) = at(i, j);
    return out;
}

std::vector<double>
solveLinearSystem(Matrix a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        panic("solveLinearSystem: shape mismatch");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting for stability.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col)))
                pivot = r;
        }
        if (std::abs(a.at(pivot, col)) < 1e-14)
            panic("solveLinearSystem: singular matrix at column %zu", col);
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a.at(pivot, c), a.at(col, c));
            std::swap(b[pivot], b[col]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a.at(r, col) / a.at(col, col);
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a.at(r, c) -= factor * a.at(col, c);
            b[r] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            acc -= a.at(ri, c) * x[c];
        x[ri] = acc / a.at(ri, ri);
    }
    return x;
}

std::vector<double>
leastSquares(const Matrix &x, const std::vector<double> &y, double ridge)
{
    if (x.rows() != y.size())
        panic("leastSquares: %zu rows vs %zu targets", x.rows(), y.size());
    const Matrix xt = x.transposed();
    Matrix xtx = xt.multiply(x);
    for (std::size_t i = 0; i < xtx.rows(); ++i)
        xtx.at(i, i) += ridge;
    std::vector<double> xty(x.cols(), 0.0);
    for (std::size_t j = 0; j < x.cols(); ++j)
        for (std::size_t i = 0; i < x.rows(); ++i)
            xty[j] += x.at(i, j) * y[i];
    return solveLinearSystem(xtx, xty);
}

}  // namespace temp
