#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace temp {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

void
vlog(LogLevel level, const char *fmt, va_list args)
{
    std::fprintf(stderr, "[temp:%s] ", levelName(level));
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

}  // namespace

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const char *fmt, ...)
{
    if (level < level_)
        return;
    va_list args;
    va_start(args, fmt);
    vlog(level, fmt, args);
    va_end(args);
}

#define TEMP_FORWARD_LOG(severity)                                \
    do {                                                          \
        if ((severity) < Logger::instance().level())              \
            return;                                               \
        va_list args;                                             \
        va_start(args, fmt);                                      \
        vlog((severity), fmt, args);                              \
        va_end(args);                                             \
    } while (0)

void
logDebug(const char *fmt, ...)
{
    TEMP_FORWARD_LOG(LogLevel::Debug);
}

void
logInfo(const char *fmt, ...)
{
    TEMP_FORWARD_LOG(LogLevel::Info);
}

void
logWarn(const char *fmt, ...)
{
    TEMP_FORWARD_LOG(LogLevel::Warn);
}

void
logError(const char *fmt, ...)
{
    TEMP_FORWARD_LOG(LogLevel::Error);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[temp:FATAL] ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[temp:PANIC] ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    std::abort();
}

}  // namespace temp
