/**
 * @file
 * Minimal levelled logging plus fatal/panic termination helpers.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration), panic() is for internal invariant violations.
 */
#pragma once

#include <cstdarg>
#include <string>

namespace temp {

/// Severity levels for log messages.
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/**
 * Process-wide logging sink writing to stderr.
 *
 * The default level is Warn so library users are not spammed; examples and
 * benches raise it explicitly when narrating progress.
 */
class Logger
{
  public:
    /// Returns the process-wide logger instance.
    static Logger &instance();

    /// Sets the minimum severity that will be emitted.
    void setLevel(LogLevel level) { level_ = level; }

    /// Returns the current minimum severity.
    LogLevel level() const { return level_; }

    /// Emits a printf-style message at the given severity.
    void log(LogLevel level, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

  private:
    Logger() = default;
    LogLevel level_ = LogLevel::Warn;
};

/// Emits a debug-level message through the global logger.
void logDebug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
/// Emits an info-level message through the global logger.
void logInfo(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
/// Emits a warning through the global logger.
void logWarn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
/// Emits an error through the global logger.
void logError(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminates the process because of a user-caused error (bad configuration,
 * invalid arguments). Prints the message and exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminates the process because of an internal invariant violation (a bug
 * in the framework itself). Prints the message and aborts.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace temp
