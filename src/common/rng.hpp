/**
 * @file
 * Deterministic random number generation for search heuristics, fault
 * injection and cost-model dataset synthesis.
 *
 * All stochastic components of the framework take an explicit Rng so runs
 * are reproducible; there is deliberately no global generator.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.hpp"

namespace temp {

/// Seeded Mersenne-Twister wrapper with the helpers the framework needs.
class Rng
{
  public:
    /// Constructs a generator with a fixed seed (default reproducible seed).
    explicit Rng(std::uint64_t seed = 0x7e3c5u) : engine_(seed) {}

    /// Returns a uniform integer in [lo, hi] inclusive.
    int
    uniformInt(int lo, int hi)
    {
        if (lo > hi)
            panic("Rng::uniformInt: empty range [%d, %d]", lo, hi);
        std::uniform_int_distribution<int> dist(lo, hi);
        return dist(engine_);
    }

    /// Returns a uniform size_t index in [0, size).
    std::size_t
    index(std::size_t size)
    {
        if (size == 0)
            panic("Rng::index: empty container");
        std::uniform_int_distribution<std::size_t> dist(0, size - 1);
        return dist(engine_);
    }

    /// Returns a uniform double in [lo, hi).
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /// Returns a standard-normal sample scaled by stddev.
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /// Returns true with the given probability.
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    /// Picks a uniformly random element of a non-empty vector.
    template <typename T>
    const T &
    pick(const std::vector<T> &items)
    {
        return items[index(items.size())];
    }

    /// Shuffles a vector in place.
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        std::shuffle(items.begin(), items.end(), engine_);
    }

    /// Exposes the underlying engine for std distributions.
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace temp
