/**
 * @file
 * A minimal JSON value parser for the service front end.
 *
 * The serve layer accepts request documents over the network, so the
 * parser is written for hostile input: strict grammar (no trailing
 * commas, no comments), a recursion-depth cap, and error messages
 * carrying the byte offset. Numbers keep their raw lexeme alongside
 * the parsed double so integer-valued fields (seeds, budgets) can be
 * re-read at full precision — the request round-trip contract
 * (serialize -> parse -> identical canonical key) depends on it.
 *
 * This is the inbound mirror of api/serialize.hpp's insertion-ordered
 * builder: objects preserve key order, so a parsed document can be
 * compared field-for-field against what the builder emits.
 */
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace temp::common {

/// One parsed JSON value (a small DOM node).
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool bool_value = false;
    /// Parsed numeric value (Type::Number).
    double number = 0.0;
    /// Raw token for numbers (exact round-trips of integer fields) or
    /// the decoded text for strings.
    std::string text;
    std::vector<JsonValue> items;  ///< Type::Array elements
    /// Type::Object members in document order.
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /// Object member lookup; nullptr when absent (or not an object).
    const JsonValue *find(const std::string &key) const;

    /// Printable type name ("object", "number", ...).
    const char *typeName() const;
};

/**
 * Parses one complete JSON document (trailing whitespace allowed,
 * trailing garbage rejected).
 *
 * @return false with *error set ("json parse error at byte N: ...") on
 *         malformed input; *out is unspecified then.
 */
bool parseJson(const std::string &input, JsonValue *out,
               std::string *error);

}  // namespace temp::common
