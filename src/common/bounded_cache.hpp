/**
 * @file
 * Bounded-cache governance for the whole memo stack.
 *
 * Every memo layer in the system — the service's framework/pod maps,
 * the breakdown and step-report memos, the layout cache, the schedule
 * cache and the router's route pool — is an append-only map by
 * default, which is a by-design memory leak once the process is a
 * long-lived service. This header owns the shared machinery that
 * bounds them:
 *
 *  - LruMap: the unsynchronized LRU core (hash map + intrusive
 *    recency list) for caches that already run under their own lock
 *    (ScheduleCache lowers under its exclusive lock, the Router pool
 *    shares one mutex across three pools). Supports heterogeneous
 *    probes (transparent Hash/Equal), an eviction guard (never evict
 *    a pinned route) and a byte estimator.
 *  - BoundedCache: a thread-safe sharded facade over LruMap shards
 *    (one shared_mutex per shard). Unbounded lookups take the lock
 *    shared and touch nothing, so a capacity of 0 — the default
 *    everywhere — keeps the pre-governance hot paths and their
 *    bit-exactness guarantees intact; bounded lookups upgrade to the
 *    exclusive lock to maintain recency.
 *  - CacheStats / CacheBudget: the per-cache counter snapshot every
 *    layer reports (CacheStatsRequest serializes them) and the knob
 *    struct config_io parses budgets into.
 *
 * Capacity semantics: an entry budget and a byte budget compose (0 =
 * unbounded for either); the cache evicts while over *either*. Byte
 * budgets are fed by the per-layer bytes_est estimators, so
 * `*.max_bytes` config keys govern real memory residency instead of
 * entry counts. Eviction is strict LRU among evictable entries; when
 * every entry is pinned the cache may transiently exceed its budget
 * rather than drop live data. Evicted keys that return recount as
 * misses — the honest-accounting contract of the evaluator stack is
 * preserved under eviction because every cached value is a pure
 * function of its key.
 */
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace temp::common {

/// One memo layer's counters. entries/bytes_est are gauges of the
/// current contents; hits/misses/evictions are cumulative.
struct CacheStats
{
    long entries = 0;    ///< entries currently resident
    long bytes_est = 0;  ///< estimated bytes of resident entries
    long hits = 0;       ///< lookups served from the cache
    long misses = 0;     ///< lookups that had to compute
    long evictions = 0;  ///< entries dropped to honour the budget

    CacheStats &operator+=(const CacheStats &other)
    {
        entries += other.entries;
        bytes_est += other.bytes_est;
        hits += other.hits;
        misses += other.misses;
        evictions += other.evictions;
        return *this;
    }
};

/**
 * Entry and byte budgets for every layer of the memo stack (0 =
 * unbounded, the default — existing behaviour and bit-exactness
 * guarantees are untouched unless a budget is set). Parsed from config
 * keys by core::frameworkOptionsFromConfig and applied per-request
 * through FrameworkOptions; the service-level budgets bound
 * TempService's own maps and are not part of the framework cache key.
 * Entry and byte budgets compose: a layer evicts while over either.
 */
struct CacheBudget
{
    long max_frameworks = 0;        ///< service.cache.max_frameworks
    long max_pods = 0;              ///< service.cache.max_pods
    long max_eval_entries = 0;      ///< eval.cache.max_entries
    long max_step_entries = 0;      ///< eval.cache.max_step_entries
    long max_layout_entries = 0;    ///< eval.cache.max_layouts
    long max_schedule_entries = 0;  ///< net.schedule_cache.max_entries
    long max_route_entries = 0;     ///< net.route_pool.max_entries

    /// @{ Byte budgets, fed by the per-layer bytes_est estimators.
    long max_eval_bytes = 0;      ///< eval.cache.max_bytes
    long max_step_bytes = 0;      ///< eval.cache.max_step_bytes
    long max_layout_bytes = 0;    ///< eval.cache.max_layout_bytes
    long max_schedule_bytes = 0;  ///< net.schedule_cache.max_bytes
    long max_route_bytes = 0;     ///< net.route_pool.max_bytes
    /// @}

    /// True when any framework-level budget is finite (the service
    /// budgets do not affect framework construction).
    bool boundsFramework() const
    {
        return max_eval_entries > 0 || max_step_entries > 0 ||
               max_layout_entries > 0 || max_schedule_entries > 0 ||
               max_route_entries > 0 || max_eval_bytes > 0 ||
               max_step_bytes > 0 || max_layout_bytes > 0 ||
               max_schedule_bytes > 0 || max_route_bytes > 0;
    }
};

/// Default byte estimate of a cached (key, value) pair; string keys
/// count their heap payload, everything else its object size.
template <typename T>
inline long
cacheByteEstimate(const T &)
{
    return static_cast<long>(sizeof(T));
}

inline long
cacheByteEstimate(const std::string &s)
{
    return static_cast<long>(sizeof(std::string) + s.capacity());
}

/**
 * The unsynchronized LRU core: an unordered map plus an intrusive
 * recency list of pointers into the map's (node-stable) keys. For use
 * under an external lock; BoundedCache wraps it per shard for
 * stand-alone thread-safe use.
 */
template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Equal = std::equal_to<Key>>
class LruMap
{
  public:
    explicit LruMap(std::size_t capacity = 0) : capacity_(capacity) {}

    /// Entry budget; 0 = unbounded. Shrinking evicts immediately.
    void setCapacity(std::size_t capacity)
    {
        capacity_ = capacity;
        evictOverBudget();
    }
    std::size_t capacity() const { return capacity_; }

    /// Byte budget over bytes_est; 0 = unbounded. Composes with the
    /// entry budget: the map evicts while over either.
    void setMaxBytes(long max_bytes)
    {
        max_bytes_ = max_bytes > 0 ? max_bytes : 0;
        evictOverBudget();
    }
    long maxBytes() const { return max_bytes_; }

    bool bounded() const { return capacity_ > 0 || max_bytes_ > 0; }

    std::size_t size() const { return map_.size(); }
    long bytesEstimate() const { return bytes_; }
    long evictions() const { return evictions_; }

    /// Entries for which the guard returns false are never evicted
    /// (e.g. routes still referenced by live flows).
    void setEvictable(std::function<bool(const Value &)> guard)
    {
        evictable_ = std::move(guard);
    }

    /// Replaces the default sizeof-based byte estimator. Applies to
    /// entries inserted after the call.
    void setByteEstimate(
        std::function<long(const Key &, const Value &)> estimate)
    {
        estimate_ = std::move(estimate);
    }

    /// Read-only probe: no recency update, safe under a shared lock.
    template <typename K>
    const Value *peek(const K &key) const
    {
        auto it = map_.find(key);
        return it != map_.end() ? &it->second.value : nullptr;
    }

    /// Probe that refreshes recency (requires the external exclusive
    /// lock when readers run concurrently).
    template <typename K>
    Value *touch(const K &key)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return nullptr;
        lru_.splice(lru_.begin(), lru_, it->second.pos);
        return &it->second.value;
    }

    /**
     * Inserts (or finds) a key; the resident value wins on a
     * duplicate, mirroring emplace. Evicts least-recently-used
     * evictable entries while over budget.
     *
     * @returns (pointer to resident value, inserted?). The pointer is
     *          valid until the entry is evicted or erased.
     */
    std::pair<Value *, bool> insert(Key key, Value value)
    {
        auto [it, inserted] = map_.try_emplace(std::move(key));
        if (!inserted) {
            lru_.splice(lru_.begin(), lru_, it->second.pos);
            return {&it->second.value, false};
        }
        it->second.value = std::move(value);
        lru_.push_front(&it->first);
        it->second.pos = lru_.begin();
        it->second.bytes = estimate_
                               ? estimate_(it->first, it->second.value)
                               : cacheByteEstimate(it->first) +
                                     cacheByteEstimate(it->second.value);
        bytes_ += it->second.bytes;
        Value *resident = &it->second.value;
        evictOverBudget();
        return {resident, true};
    }

    void clear()
    {
        map_.clear();
        lru_.clear();
        bytes_ = 0;
    }

    /// Visits every resident (key, value) pair in unspecified order.
    template <typename Fn>
    void forEachResident(Fn &&fn) const
    {
        for (const auto &[key, entry] : map_)
            fn(key, entry.value);
    }

  private:
    struct Entry
    {
        Value value{};
        typename std::list<const Key *>::iterator pos;
        long bytes = 0;
    };

    bool overBudget() const
    {
        return (capacity_ != 0 && map_.size() > capacity_) ||
               (max_bytes_ > 0 && bytes_ > max_bytes_);
    }

    void evictOverBudget()
    {
        if (!overBudget())
            return;
        // Scan from the LRU tail, skipping pinned entries. The scan
        // restarts per insert but the cache is at most one entry over
        // budget then, so the common case drops exactly the tail. The
        // MRU head is never evicted: insert() hands out a pointer to
        // it, and a cache that cannot hold even the entry being
        // inserted would invalidate that pointer mid-flight.
        auto pos = lru_.end();
        while (overBudget() && pos != lru_.begin()) {
            --pos;
            if (pos == lru_.begin())
                break;  // the MRU entry stays resident
            auto it = map_.find(**pos);
            if (evictable_ && !evictable_(it->second.value))
                continue;  // pinned: keep, try the next-older entry
            bytes_ -= it->second.bytes;
            pos = lru_.erase(pos);
            map_.erase(it);
            ++evictions_;
        }
    }

    std::size_t capacity_;
    long max_bytes_ = 0;
    std::unordered_map<Key, Entry, Hash, Equal> map_;
    /// Recency list, most recent first; pointers into map_ keys
    /// (node-based, so stable across rehash).
    std::list<const Key *> lru_;
    long bytes_ = 0;
    long evictions_ = 0;
    std::function<bool(const Value &)> evictable_;
    std::function<long(const Key &, const Value &)> estimate_;
};

/**
 * Thread-safe sharded LRU cache: the drop-in replacement for the
 * mutex + unordered_map idiom of the memo layers. Keys hash to a
 * shard; each shard is a shared_mutex over an LruMap. When the cache
 * is unbounded (the default), get() takes the shard lock shared and
 * performs no recency maintenance — the exact cost profile of the
 * maps it replaces; a finite budget upgrades lookups to the exclusive
 * shard lock so LRU order stays truthful.
 */
template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Equal = std::equal_to<Key>>
class BoundedCache
{
  public:
    /**
     * @param capacity Total entry budget across shards (0 = unbounded).
     * @param shards Shard count; clamped so every shard owns at least
     *        one budgeted entry, which keeps `size() <= capacity`
     *        exact (per-shard budgets partition the total). The
     *        default is a single shard: every memo this replaces ran
     *        under one global mutex, and one shard is the only layout
     *        that keeps `size() <= capacity` exact across
     *        setCapacity() re-budgeting (shard count is fixed after
     *        construction). Opt into more shards only for caches
     *        whose budget is set once at construction.
     */
    explicit BoundedCache(long capacity = 0, int shards = 1)
    {
        const int n = shardCountFor(capacity, shards);
        shards_.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            shards_.push_back(std::make_unique<Shard>());
        distributeCapacity(capacity);
    }

    /// Re-budgets in place (shard count is fixed at construction);
    /// shrinking evicts immediately. An unchanged capacity is a
    /// lock-free no-op — per-request budget application sits on the
    /// service hot path and must not serialise cache hits.
    void setCapacity(long capacity)
    {
        if (capacity < 0)
            capacity = 0;
        if (capacity_.load() == capacity)
            return;
        std::lock_guard<std::mutex> lock(capacity_mutex_);
        distributeCapacity(capacity);
    }

    long capacity() const { return capacity_.load(); }

    /// Total byte budget across shards (0 = unbounded); split like the
    /// entry budget. Same lock-free no-op guard on unchanged values.
    void setMaxBytes(long max_bytes)
    {
        if (max_bytes < 0)
            max_bytes = 0;
        if (max_bytes_.load() == max_bytes)
            return;
        std::lock_guard<std::mutex> lock(capacity_mutex_);
        distributeMaxBytes(max_bytes);
    }

    long maxBytes() const { return max_bytes_.load(); }

    bool bounded() const
    {
        return capacity_.load() > 0 || max_bytes_.load() > 0;
    }

    /// Looks a key up, counting a hit or miss.
    std::optional<Value> get(const Key &key)
    {
        Shard &shard = shardFor(key);
        if (!bounded()) {
            std::shared_lock<std::shared_mutex> lock(shard.mutex);
            if (const Value *value = shard.map.peek(key)) {
                ++shard.hits;
                return *value;
            }
        } else {
            std::unique_lock<std::shared_mutex> lock(shard.mutex);
            if (Value *value = shard.map.touch(key)) {
                ++shard.hits;
                return *value;
            }
        }
        ++shard.misses;
        return std::nullopt;
    }

    /**
     * Inserts a computed value; on a racing duplicate the resident
     * value wins and is returned, so concurrent computers of one key
     * converge on a single shared instance.
     */
    std::pair<Value, bool> insert(const Key &key, Value value)
    {
        Shard &shard = shardFor(key);
        std::unique_lock<std::shared_mutex> lock(shard.mutex);
        auto [resident, inserted] =
            shard.map.insert(key, std::move(value));
        return {*resident, inserted};
    }

    void clear()
    {
        for (auto &shard : shards_) {
            std::unique_lock<std::shared_mutex> lock(shard->mutex);
            shard->map.clear();
        }
    }

    std::size_t size() const
    {
        std::size_t total = 0;
        for (const auto &shard : shards_) {
            std::shared_lock<std::shared_mutex> lock(shard->mutex);
            total += shard->map.size();
        }
        return total;
    }

    /// Aggregated counters across shards. Each shard is snapshotted
    /// under its lock; the cross-shard sum is not one atomic cut, but
    /// every per-shard snapshot is internally consistent.
    CacheStats stats() const
    {
        CacheStats total;
        for (const auto &shard : shards_) {
            std::unique_lock<std::shared_mutex> lock(shard->mutex);
            total.entries += static_cast<long>(shard->map.size());
            total.bytes_est += shard->map.bytesEstimate();
            total.hits += shard->hits.load();
            total.misses += shard->misses.load();
            total.evictions += shard->map.evictions();
        }
        return total;
    }

    void setEvictable(std::function<bool(const Value &)> guard)
    {
        for (auto &shard : shards_) {
            std::unique_lock<std::shared_mutex> lock(shard->mutex);
            shard->map.setEvictable(guard);
        }
    }

    void setByteEstimate(
        std::function<long(const Key &, const Value &)> estimate)
    {
        for (auto &shard : shards_) {
            std::unique_lock<std::shared_mutex> lock(shard->mutex);
            shard->map.setByteEstimate(estimate);
        }
    }

    /// Visits every resident (key, value) pair (shard by shard, under
    /// the shared lock). For stats collection, not mutation.
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const auto &shard : shards_) {
            std::shared_lock<std::shared_mutex> lock(shard->mutex);
            shard->map.forEachResident(fn);
        }
    }

  private:
    struct Shard
    {
        mutable std::shared_mutex mutex;
        LruMap<Key, Value, Hash, Equal> map;
        /// Atomic: bumped under the shared lock on unbounded hits.
        std::atomic<long> hits{0};
        std::atomic<long> misses{0};
    };

    static int shardCountFor(long capacity, int shards)
    {
        if (shards < 1)
            shards = 1;
        if (capacity > 0 && static_cast<long>(shards) > capacity)
            shards = static_cast<int>(capacity);
        return shards;
    }

    /// Splits a total budget into per-shard budgets that sum to it.
    void distributeCapacity(long capacity)
    {
        if (capacity < 0)
            capacity = 0;
        capacity_ = capacity;
        const long n = static_cast<long>(shards_.size());
        // A nonzero budget smaller than the shard count would leave
        // zero-capacity (= unbounded) shards; give every shard at
        // least one entry instead. setCapacity after construction
        // cannot re-shard, so `size() <= max(capacity, shards)` is
        // the honest bound then (construction-time budgets are exact).
        const long base = capacity / n;
        const long extra = capacity % n;
        for (long i = 0; i < n; ++i) {
            auto &shard = shards_[static_cast<std::size_t>(i)];
            std::unique_lock<std::shared_mutex> lock(shard->mutex);
            const long cap = base + (i < extra ? 1 : 0);
            shard->map.setCapacity(static_cast<std::size_t>(
                capacity == 0 ? 0 : std::max(cap, 1L)));
        }
    }

    /// Splits a total byte budget into per-shard budgets that sum to
    /// it; residency of an entry bigger than its shard's slice is
    /// still guaranteed by the MRU-head protection, so a too-small
    /// byte budget degrades to caching one entry per shard.
    void distributeMaxBytes(long max_bytes)
    {
        if (max_bytes < 0)
            max_bytes = 0;
        max_bytes_ = max_bytes;
        const long n = static_cast<long>(shards_.size());
        const long base = max_bytes / n;
        const long extra = max_bytes % n;
        for (long i = 0; i < n; ++i) {
            auto &shard = shards_[static_cast<std::size_t>(i)];
            std::unique_lock<std::shared_mutex> lock(shard->mutex);
            const long cap = base + (i < extra ? 1 : 0);
            shard->map.setMaxBytes(max_bytes == 0 ? 0
                                                  : std::max(cap, 1L));
        }
    }

    Shard &shardFor(const Key &key)
    {
        const std::size_t h = Hash{}(key);
        return *shards_[h % shards_.size()];
    }

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<long> capacity_{0};
    std::atomic<long> max_bytes_{0};
    std::mutex capacity_mutex_;  ///< serialises re-budgeting
};

}  // namespace temp::common
