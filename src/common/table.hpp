/**
 * @file
 * Fixed-width ASCII table printer used by the benchmark harnesses to emit
 * paper-style result rows (one bench binary per table/figure).
 */
#pragma once

#include <string>
#include <vector>

namespace temp {

/// Accumulates rows and prints an aligned ASCII table to stdout.
class TablePrinter
{
  public:
    /// Creates a table with the given column headers.
    explicit TablePrinter(std::vector<std::string> headers);

    /// Appends a row; missing cells are blank, extra cells are dropped.
    void addRow(std::vector<std::string> cells);

    /// Convenience: formats a double with the given precision.
    static std::string fmt(double value, int precision = 3);

    /// Convenience: formats a value as a multiplier, e.g. "1.72x".
    static std::string fmtX(double value, int precision = 2);

    /// Convenience: formats a percentage, e.g. "38.4%".
    static std::string fmtPct(double fraction, int precision = 1);

    /// Renders the table (header, separator, rows) to stdout.
    void print(const std::string &title = "") const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace temp
