/**
 * @file
 * A minimal fixed-size thread pool for data-parallel loops and
 * fire-and-collect task submission.
 *
 * Deliberately work-stealing-free: jobs are index ranges handed out from
 * a single atomic cursor, which keeps the implementation small and the
 * result placement deterministic (task i always writes slot i; the
 * *execution* order is unspecified but no output ever depends on it).
 * The calling thread participates in the loop, so a pool of size 1 runs
 * everything inline and a pool is never slower than the serial loop by
 * more than the dispatch overhead.
 *
 * submit() adds a second work source: single future-returning tasks
 * queued FIFO behind any active parallelFor job. Workers prefer the
 * loop (its caller is blocked on it), then drain the task queue; a
 * pool without workers runs the task inline so futures always resolve.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace temp {

/// Fixed-size pool executing parallelFor loops; one job at a time.
class ThreadPool
{
  public:
    /// @param threads Total worker count including the calling thread;
    ///        0 means hardware concurrency.
    explicit ThreadPool(int threads = 0)
    {
        if (threads <= 0) {
            threads =
                static_cast<int>(std::thread::hardware_concurrency());
            if (threads <= 0)
                threads = 1;
        }
        thread_count_ = threads;
        workers_.reserve(static_cast<std::size_t>(threads - 1));
        for (int i = 0; i < threads - 1; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    /// Drains queued tasks (their futures resolve) before joining.
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /// Total threads the pool runs loops on (workers + caller).
    int threadCount() const { return thread_count_; }

    /**
     * Runs fn(0) .. fn(n-1) across the pool and blocks until all
     * complete. Concurrent calls from different threads serialise.
     * The first exception thrown by any iteration is rethrown here.
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        if (n == 0)
            return;
        if (workers_.empty() || n == 1) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        std::lock_guard<std::mutex> serial(job_mutex_);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_fn_ = &fn;
            job_n_ = n;
            next_ = 0;
            in_flight_ = 0;
            error_ = nullptr;
        }
        cv_.notify_all();
        runShare();
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock,
                      [this] { return next_ >= job_n_ && in_flight_ == 0; });
        job_fn_ = nullptr;
        if (error_) {
            std::exception_ptr error = error_;
            error_ = nullptr;
            lock.unlock();
            std::rethrow_exception(error);
        }
    }

    /**
     * Queues one task for asynchronous execution and returns its
     * future. Exceptions propagate through the future. A task may
     * itself call parallelFor on this pool (the calling worker runs its
     * share, so nested use cannot deadlock). When the pool has no
     * workers (size 1) the task runs inline before submit() returns.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return future;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.push_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

  private:
    /// Claims and runs loop iterations until the current job drains.
    void
    runShare()
    {
        for (;;) {
            std::size_t index;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (job_fn_ == nullptr || next_ >= job_n_)
                    return;
                index = next_++;
                ++in_flight_;
            }
            try {
                (*job_fn_)(index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--in_flight_ == 0 && next_ >= job_n_)
                    done_cv_.notify_all();
            }
        }
    }

    void
    workerLoop()
    {
        for (;;) {
            bool run_job = false;
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this] {
                    return stop_ || !tasks_.empty() ||
                           (job_fn_ != nullptr && next_ < job_n_);
                });
                if (job_fn_ != nullptr && next_ < job_n_) {
                    run_job = true;
                } else if (!tasks_.empty()) {
                    task = std::move(tasks_.front());
                    tasks_.pop_front();
                } else if (stop_) {
                    return;
                }
            }
            if (run_job)
                runShare();
            else if (task)
                task();
        }
    }

    int thread_count_ = 1;
    std::vector<std::thread> workers_;
    std::mutex job_mutex_;  ///< serialises concurrent parallelFor calls
    std::mutex mutex_;
    std::deque<std::function<void()>> tasks_;  ///< submit() queue
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::size_t)> *job_fn_ = nullptr;
    std::size_t job_n_ = 0;
    std::size_t next_ = 0;
    std::size_t in_flight_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
};

}  // namespace temp
