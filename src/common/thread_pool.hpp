/**
 * @file
 * A minimal fixed-size thread pool for data-parallel loops.
 *
 * Deliberately work-stealing-free: jobs are index ranges handed out from
 * a single atomic cursor, which keeps the implementation small and the
 * result placement deterministic (task i always writes slot i; the
 * *execution* order is unspecified but no output ever depends on it).
 * The calling thread participates in the loop, so a pool of size 1 runs
 * everything inline and a pool is never slower than the serial loop by
 * more than the dispatch overhead.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace temp {

/// Fixed-size pool executing parallelFor loops; one job at a time.
class ThreadPool
{
  public:
    /// @param threads Total worker count including the calling thread;
    ///        0 means hardware concurrency.
    explicit ThreadPool(int threads = 0)
    {
        if (threads <= 0) {
            threads =
                static_cast<int>(std::thread::hardware_concurrency());
            if (threads <= 0)
                threads = 1;
        }
        thread_count_ = threads;
        workers_.reserve(static_cast<std::size_t>(threads - 1));
        for (int i = 0; i < threads - 1; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /// Total threads the pool runs loops on (workers + caller).
    int threadCount() const { return thread_count_; }

    /**
     * Runs fn(0) .. fn(n-1) across the pool and blocks until all
     * complete. Concurrent calls from different threads serialise.
     * The first exception thrown by any iteration is rethrown here.
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        if (n == 0)
            return;
        if (workers_.empty() || n == 1) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        std::lock_guard<std::mutex> serial(job_mutex_);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_fn_ = &fn;
            job_n_ = n;
            next_ = 0;
            in_flight_ = 0;
            error_ = nullptr;
        }
        cv_.notify_all();
        runShare();
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock,
                      [this] { return next_ >= job_n_ && in_flight_ == 0; });
        job_fn_ = nullptr;
        if (error_) {
            std::exception_ptr error = error_;
            error_ = nullptr;
            lock.unlock();
            std::rethrow_exception(error);
        }
    }

  private:
    /// Claims and runs loop iterations until the current job drains.
    void
    runShare()
    {
        for (;;) {
            std::size_t index;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (job_fn_ == nullptr || next_ >= job_n_)
                    return;
                index = next_++;
                ++in_flight_;
            }
            try {
                (*job_fn_)(index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--in_flight_ == 0 && next_ >= job_n_)
                    done_cv_.notify_all();
            }
        }
    }

    void
    workerLoop()
    {
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this] {
                    return stop_ ||
                           (job_fn_ != nullptr && next_ < job_n_);
                });
                if (stop_)
                    return;
            }
            runShare();
        }
    }

    int thread_count_ = 1;
    std::vector<std::thread> workers_;
    std::mutex job_mutex_;  ///< serialises concurrent parallelFor calls
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::size_t)> *job_fn_ = nullptr;
    std::size_t job_n_ = 0;
    std::size_t next_ = 0;
    std::size_t in_flight_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
};

}  // namespace temp
