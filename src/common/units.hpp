/**
 * @file
 * Unit helpers and physical constants used throughout the TEMP framework.
 *
 * Conventions:
 *  - time is expressed in seconds (double),
 *  - data sizes in bytes (double, to allow analytic scaling),
 *  - compute in FLOPs (double),
 *  - energy in joules (double).
 */
#pragma once

namespace temp {

/// Kibi/mebi/gibi byte multipliers.
constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;

/// Decimal multipliers used for bandwidth and FLOP ratings.
constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;
constexpr double kPeta = 1e15;

/// Time units expressed in seconds.
constexpr double kSecond = 1.0;
constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;

/// Energy units expressed in joules.
constexpr double kPicoJoule = 1e-12;

/// Bits per byte, used when converting pJ/bit energy ratings.
constexpr double kBitsPerByte = 8.0;

/// Converts a GB/s figure to bytes-per-second.
constexpr double gbPerSec(double gb) { return gb * kGiga; }

/// Converts a TB/s figure to bytes-per-second.
constexpr double tbPerSec(double tb) { return tb * kTera; }

/// Converts a TFLOPS figure to FLOPs-per-second.
constexpr double tflops(double t) { return t * kTera; }

/// Converts gigabytes to bytes (decimal convention, as memory vendors use).
constexpr double gigabytes(double gb) { return gb * kGiga; }

/// Converts megabytes to bytes (decimal convention).
constexpr double megabytes(double mb) { return mb * kMega; }

/// Converts a pJ/bit link-energy rating to joules-per-byte.
constexpr double pjPerBitToJoulePerByte(double pj_per_bit)
{
    return pj_per_bit * kPicoJoule * kBitsPerByte;
}

/// Bytes per scalar for the mixed-precision training recipe (Sec. VIII-A).
constexpr double kBytesFp16 = 2.0;
constexpr double kBytesFp32 = 4.0;

}  // namespace temp
