#include "common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace temp::common {

namespace {

/// Nesting cap: network input must not be able to blow the stack.
constexpr int kMaxDepth = 64;

class Parser
{
  public:
    Parser(const std::string &input, std::string *error)
        : input_(input), error_(error)
    {
    }

    bool
    parse(JsonValue *out)
    {
        skipWs();
        if (!value(out, 0))
            return false;
        skipWs();
        if (pos_ != input_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_) {
            *error_ = "json parse error at byte " +
                      std::to_string(pos_) + ": " + what;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < input_.size()) {
            const char c = input_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek() const
    {
        return pos_ < input_.size() ? input_[pos_] : '\0';
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (input_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return true;
    }

    bool
    value(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting deeper than 64 levels");
        if (pos_ >= input_.size())
            return fail("unexpected end of input");
        switch (input_[pos_]) {
        case '{': return object(out, depth);
        case '[': return array(out, depth);
        case '"':
            out->type = JsonValue::Type::String;
            return string(&out->text);
        case 't':
            out->type = JsonValue::Type::Bool;
            out->bool_value = true;
            return literal("true", 4);
        case 'f':
            out->type = JsonValue::Type::Bool;
            out->bool_value = false;
            return literal("false", 5);
        case 'n':
            out->type = JsonValue::Type::Null;
            return literal("null", 4);
        default: return number(out);
        }
    }

    bool
    object(JsonValue *out, int depth)
    {
        out->type = JsonValue::Type::Object;
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (peek() != '"')
                return fail("expected '\"' starting an object key");
            if (!string(&key))
                return false;
            skipWs();
            if (peek() != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            JsonValue member;
            if (!value(&member, depth + 1))
                return false;
            out->members.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue *out, int depth)
    {
        out->type = JsonValue::Type::Array;
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue element;
            if (!value(&element, depth + 1))
                return false;
            out->items.push_back(std::move(element));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    /// Appends one code point as UTF-8.
    static void
    appendUtf8(std::string *out, unsigned code)
    {
        if (code < 0x80) {
            out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else if (code < 0x10000) {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
            out->push_back(static_cast<char>(0xf0 | (code >> 18)));
            out->push_back(
                static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
            out->push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
    }

    /// Parses the 4 hex digits at `at` (caller checked the length).
    bool
    hex4(std::size_t at, unsigned *code)
    {
        *code = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = input_[at + i];
            *code <<= 4;
            if (h >= '0' && h <= '9')
                *code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                *code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                *code |= static_cast<unsigned>(h - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    bool
    string(std::string *out)
    {
        ++pos_;  // opening quote
        out->clear();
        while (pos_ < input_.size()) {
            const char c = input_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out->push_back(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= input_.size())
                return fail("unterminated escape");
            const char esc = input_[pos_++];
            switch (esc) {
            case '"': out->push_back('"'); break;
            case '\\': out->push_back('\\'); break;
            case '/': out->push_back('/'); break;
            case 'b': out->push_back('\b'); break;
            case 'f': out->push_back('\f'); break;
            case 'n': out->push_back('\n'); break;
            case 'r': out->push_back('\r'); break;
            case 't': out->push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > input_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                if (!hex4(pos_, &code))
                    return false;
                pos_ += 4;
                if (code >= 0xdc00 && code <= 0xdfff)
                    return fail("unpaired low surrogate in \\u "
                                "escape");
                if (code >= 0xd800 && code <= 0xdbff) {
                    // A high surrogate must be followed by a \u-escaped
                    // low surrogate; combine the pair into one code
                    // point so the parsed string stays valid UTF-8.
                    if (pos_ + 6 > input_.size() ||
                        input_[pos_] != '\\' || input_[pos_ + 1] != 'u')
                        return fail("high surrogate not followed by "
                                    "\\u low surrogate");
                    unsigned low = 0;
                    if (!hex4(pos_ + 2, &low))
                        return false;
                    if (low < 0xdc00 || low > 0xdfff)
                        return fail("high surrogate not followed by "
                                    "\\u low surrogate");
                    pos_ += 6;
                    code = 0x10000 + ((code - 0xd800) << 10) +
                           (low - 0xdc00);
                }
                appendUtf8(out, code);
                break;
            }
            default: return fail("unknown escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue *out)
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("expected a value");
        // Integer part: no leading zeros (except a lone 0).
        if (peek() == '0') {
            ++pos_;
        } else {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("expected digits after decimal point");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("expected digits in exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        out->type = JsonValue::Type::Number;
        out->text = input_.substr(start, pos_ - start);
        out->number = std::strtod(out->text.c_str(), nullptr);
        return true;
    }

    const std::string &input_;
    std::string *error_;
    std::size_t pos_ = 0;
};

}  // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, member] : members) {
        if (name == key)
            return &member;
    }
    return nullptr;
}

const char *
JsonValue::typeName() const
{
    switch (type) {
    case Type::Null: return "null";
    case Type::Bool: return "bool";
    case Type::Number: return "number";
    case Type::String: return "string";
    case Type::Array: return "array";
    case Type::Object: return "object";
    }
    return "unknown";
}

bool
parseJson(const std::string &input, JsonValue *out, std::string *error)
{
    return Parser(input, error).parse(out);
}

}  // namespace temp::common
