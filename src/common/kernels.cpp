#include "common/kernels.hpp"

#include <algorithm>
#include <atomic>

/*
 * Reduction-clause pragmas for the chunk extremes. max/min over the
 * NaN-free lanes the kernels construct are exact and order-independent,
 * so letting the vectorizer tree-reduce them cannot change bits — while
 * a sequential W-long std::max/std::min chain would serialize each
 * chunk behind ~W dependent-op latencies.
 */
#if TEMP_SIMD_ENABLED
#define TEMP_PRAGMA_SIMD_DRAIN \
    _Pragma("omp simd reduction(max : cmax) reduction(| : any_bad)")
#define TEMP_PRAGMA_SIMD_MINRED _Pragma("omp simd reduction(min : cmin)")
#else
#define TEMP_PRAGMA_SIMD_DRAIN
#define TEMP_PRAGMA_SIMD_MINRED
#endif

namespace temp::kernels {

namespace {

std::atomic<bool> g_simd_active{true};

}  // namespace

bool
simdActive()
{
#if TEMP_SIMD_ENABLED
    return g_simd_active.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

void
setSimdActive(bool active)
{
    g_simd_active.store(active, std::memory_order_relaxed);
}

TEMP_NO_AUTOVEC MaxDrain
maxDrainArgmaxScalar(const double *loads, const std::uint32_t *stamps,
                     std::uint32_t epoch, const double *bandwidth, int n)
{
    MaxDrain r;
    for (int i = 0; i < n; ++i) {
        if (stamps[i] != epoch)
            continue;
        if (bandwidth[i] <= 0.0) {
            r.dead_link = i;
            return r;
        }
        const double drain = loads[i] / bandwidth[i];
        if (drain > r.worst) {
            r.worst = drain;
            r.link = i;
            r.link_load = loads[i];
        }
    }
    return r;
}

MaxDrain
maxDrainArgmaxSimd(const double *loads, const std::uint32_t *stamps,
                   std::uint32_t epoch, const double *bandwidth, int n)
{
    MaxDrain r;
    constexpr int W = 16;
    double lane[W];
    int i = 0;
    for (; i + W <= n; i += W) {
        // Blend untouched lanes to 0.0/1.0: 0.0 / 1.0 == +0.0 exactly,
        // the identity of a max over non-negative drains, and it keeps
        // untouched dead links (bandwidth 0) from producing NaN lanes.
        // The chunk max rides the pragma's max-reduction — exact and
        // order-independent for the NaN-free lanes this blend produces
        // (a sequential W-long std::max chain would serialize the whole
        // scan behind its dependency latency).
        double cmax = 0.0;
        std::int32_t any_bad = 0;
        TEMP_PRAGMA_SIMD_DRAIN
        for (int k = 0; k < W; ++k) {
            const bool touched = stamps[i + k] == epoch;
            const double l = touched ? loads[i + k] : 0.0;
            const double b = touched ? bandwidth[i + k] : 1.0;
            const double drain = l / b;
            lane[k] = drain;
            any_bad |= (touched && bandwidth[i + k] <= 0.0) ? 1 : 0;
            cmax = drain > cmax ? drain : cmax;
        }
        if (any_bad != 0) {
            for (int k = 0; k < W; ++k) {
                if (stamps[i + k] == epoch && bandwidth[i + k] <= 0.0) {
                    r.dead_link = i + k;
                    return r;
                }
            }
        }
        // The sequential strictly-greater scan inside the chunk
        // reproduces the scalar first-attainment tie-break.
        if (cmax > r.worst) {
            for (int k = 0; k < W; ++k) {
                if (lane[k] > r.worst) {
                    r.worst = lane[k];
                    r.link = i + k;
                    r.link_load = loads[i + k];
                }
            }
        }
    }
    for (; i < n; ++i) {
        if (stamps[i] != epoch)
            continue;
        if (bandwidth[i] <= 0.0) {
            r.dead_link = i;
            return r;
        }
        const double drain = loads[i] / bandwidth[i];
        if (drain > r.worst) {
            r.worst = drain;
            r.link = i;
            r.link_load = loads[i];
        }
    }
    return r;
}

TEMP_NO_AUTOVEC MinPlus
minPlusArgminScalar(const double *prev, const double *trans, double c, int n)
{
    MinPlus r;
    for (int p = 0; p < n; ++p) {
        const double v = (prev[p] + trans[p]) + c;
        if (v < r.value) {
            r.value = v;
            r.index = p;
        }
    }
    return r;
}

MinPlus
minPlusArgminSimd(const double *prev, const double *trans, double c, int n)
{
    MinPlus r;
    constexpr int W = 16;
    double lane[W];
    int i = 0;
    for (; i + W <= n; i += W) {
        // +inf lanes (infeasible predecessors) are the min identity; no
        // NaNs can form (trans and c are finite, prev is finite or
        // +inf), so the min-reduction is exact.
        double cmin = std::numeric_limits<double>::infinity();
        TEMP_PRAGMA_SIMD_MINRED
        for (int k = 0; k < W; ++k) {
            const double v = (prev[i + k] + trans[i + k]) + c;
            lane[k] = v;
            cmin = v < cmin ? v : cmin;
        }
        if (cmin < r.value) {
            for (int k = 0; k < W; ++k) {
                if (lane[k] < r.value) {
                    r.value = lane[k];
                    r.index = i + k;
                }
            }
        }
    }
    for (; i < n; ++i) {
        const double v = (prev[i] + trans[i]) + c;
        if (v < r.value) {
            r.value = v;
            r.index = i;
        }
    }
    return r;
}

}  // namespace temp::kernels
