/**
 * @file
 * Data-oriented evaluation kernels: the vectorizable inner loops of the
 * cost stack (contention drain scan, DP row minimisation, fused load
 * deposits), each with a reference scalar twin and a runtime dispatch.
 *
 * Bit-exactness contract: a SIMD kernel and its scalar twin must return
 * *identical bits* for identical inputs, not merely close values. The
 * kernels guarantee this by construction:
 *
 *  - only exact IEEE operations are vectorized (max/min, per-element
 *    division, independent per-element adds). Order-dependent sums stay
 *    in their sequential order; lanes never reassociate an accumulation
 *    chain.
 *  - argmax/argmin tie-breaking is "first index attaining the extreme",
 *    which equals the sequential strictly-greater/strictly-less scan.
 *    Vector paths find a chunk extreme (exact), then resolve the index
 *    with the same sequential comparison inside the chunk.
 *  - masked lanes are blended with identity values (`0.0` for max-of-
 *    nonnegatives, `+inf` for min), which cannot perturb the result.
 *  - kernel translation units are built with `-ffp-contract=off`
 *    (see the top-level CMakeLists), so no multiply-add is contracted
 *    into an FMA on hosts that have one.
 *
 * Compile-time gate: the `TEMP_SIMD` CMake option (default ON) defines
 * `TEMP_SIMD=1` and adds `-fopenmp-simd`, turning `TEMP_PRAGMA_SIMD`
 * into `#pragma omp simd`. With the option OFF the pragma is empty and
 * dispatch always takes the scalar twin. Runtime gate: setSimdActive()
 * flips dispatch without rebuilding (tests assert both paths agree on
 * the same binary).
 */
#pragma once

#include <cstdint>
#include <limits>

#if defined(TEMP_SIMD) && TEMP_SIMD
#define TEMP_SIMD_ENABLED 1
#define TEMP_PRAGMA_SIMD _Pragma("omp simd")
#else
#define TEMP_SIMD_ENABLED 0
#define TEMP_PRAGMA_SIMD
#endif

/*
 * The scalar twins are honest baselines: the compiler must not quietly
 * auto-vectorize them, or the micro_kernels bench would compare SIMD
 * against SIMD and the "never slower than scalar" bar would measure
 * noise. (Correctness never depends on this — the twins are bit-exact
 * either way.)
 */
#if defined(__clang__)
#define TEMP_NO_AUTOVEC
#elif defined(__GNUC__)
#define TEMP_NO_AUTOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define TEMP_NO_AUTOVEC
#endif

namespace temp::kernels {

/// True when dispatch takes the vector path (compile-time gate AND the
/// runtime flag). Always false in TEMP_SIMD=OFF builds.
bool simdActive();

/// Flips the runtime dispatch flag (tests compare both paths in one
/// binary). No-op in TEMP_SIMD=OFF builds.
void setSimdActive(bool active);

// --------------------------------------------------------------------
// Drain scan: the contention model's bottleneck search.
// --------------------------------------------------------------------

/// Result of a max-drain scan over epoch-stamped per-link loads.
struct MaxDrain
{
    double worst = 0.0;          ///< max load/bandwidth over stamped links
    std::int32_t link = -1;      ///< first link attaining `worst` (>0)
    double link_load = 0.0;      ///< load on that link
    std::int32_t dead_link = -1; ///< first stamped link with bw <= 0
};

/**
 * Scans links [0, n) in id order; links whose stamp matches `epoch`
 * contribute drain = loads[i] / bandwidth[i]. Returns the strictly-
 * greater first maximum (identical tie-breaking to a sorted-touched
 * scan, since sorted touched ids are id order). A stamped link with
 * non-positive bandwidth stops the scan and reports `dead_link` (the
 * caller panics; the partially-filled result is never observed).
 */
MaxDrain maxDrainArgmaxScalar(const double *loads,
                              const std::uint32_t *stamps,
                              std::uint32_t epoch, const double *bandwidth,
                              int n);
MaxDrain maxDrainArgmaxSimd(const double *loads, const std::uint32_t *stamps,
                            std::uint32_t epoch, const double *bandwidth,
                            int n);

inline MaxDrain
maxDrainArgmax(const double *loads, const std::uint32_t *stamps,
               std::uint32_t epoch, const double *bandwidth, int n)
{
    return simdActive()
               ? maxDrainArgmaxSimd(loads, stamps, epoch, bandwidth, n)
               : maxDrainArgmaxScalar(loads, stamps, epoch, bandwidth, n);
}

// --------------------------------------------------------------------
// DP row minimisation: the DLS level-1 matrix fill.
// --------------------------------------------------------------------

/// Result of a min-plus row scan.
struct MinPlus
{
    double value = std::numeric_limits<double>::infinity();
    std::int32_t index = -1;  ///< first index attaining `value`; -1 when
                              ///< every element is +inf
};

/**
 * Minimises `(prev[p] + trans[p]) + c` over p in [0, n) with the
 * strictly-less first-minimum rule. The element expression keeps the
 * DP's exact association (adding `c` per element, not after the min):
 * post-add rounding can create ties that a pre-add comparison would
 * break differently. +inf entries (infeasible predecessors) lose every
 * strict comparison, matching the former `continue` skip.
 */
MinPlus minPlusArgminScalar(const double *prev, const double *trans,
                            double c, int n);
MinPlus minPlusArgminSimd(const double *prev, const double *trans, double c,
                          int n);

inline MinPlus
minPlusArgmin(const double *prev, const double *trans, double c, int n)
{
    return simdActive() ? minPlusArgminSimd(prev, trans, c, n)
                        : minPlusArgminScalar(prev, trans, c, n);
}

// --------------------------------------------------------------------
// Fused load deposit.
// --------------------------------------------------------------------

/**
 * Deposits `bytes` on each link of one route into an epoch-stamped
 * dense load array: a stale stamp is claimed and the load *set* (no
 * O(links) zeroing pass between phases), a current stamp accumulates.
 * Deliberately scalar: routes may revisit a link (waypoint detours), so
 * the scatter has intra-route conflicts a vector lane must not race.
 * The win here is layout, not lanes — the SoA caller reads `links`
 * contiguously instead of chasing per-flow Route pointers.
 */
template <typename Index>
inline void
depositLinks(double *loads, std::uint32_t *stamps, std::uint32_t epoch,
             const Index *links, int n, double bytes)
{
    for (int k = 0; k < n; ++k) {
        const Index link = links[k];
        if (stamps[link] != epoch) {
            stamps[link] = epoch;
            loads[link] = bytes;
        } else {
            loads[link] += bytes;
        }
    }
}

}  // namespace temp::kernels
