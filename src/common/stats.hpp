/**
 * @file
 * Statistics and small dense linear-algebra helpers.
 *
 * Used by the cost-model fidelity experiments (Pearson correlation, mean
 * absolute percentage error) and by the multivariate linear-regression
 * baseline (normal-equation solve).
 */
#pragma once

#include <cstddef>
#include <vector>

namespace temp {

/// Arithmetic mean; returns 0 for an empty vector.
double mean(const std::vector<double> &xs);

/// Population standard deviation; returns 0 for fewer than two samples.
double stddev(const std::vector<double> &xs);

/// Pearson correlation coefficient between two equal-length series.
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

/// Mean absolute percentage error of predictions vs. reference values.
double meanAbsPercentError(const std::vector<double> &predicted,
                           const std::vector<double> &reference);

/// Geometric mean; all inputs must be positive.
double geomean(const std::vector<double> &xs);

/**
 * Dense row-major matrix just big enough for the regression baseline and
 * the MLP surrogate; not a general linear-algebra library.
 */
class Matrix
{
  public:
    Matrix() = default;

    /// Creates a rows x cols matrix initialised to zero.
    Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /// Mutable element access (row, col), bounds-checked in debug builds.
    double &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    /// Const element access (row, col).
    double at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /// Matrix product this * other.
    Matrix multiply(const Matrix &other) const;

    /// Transposed copy.
    Matrix transposed() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Solves the linear system A*x = b with partial-pivot Gaussian elimination.
 *
 * @param a Square coefficient matrix (copied internally).
 * @param b Right-hand side, length a.rows().
 * @return Solution vector x.
 */
std::vector<double> solveLinearSystem(Matrix a, std::vector<double> b);

/**
 * Ordinary least squares: finds w minimising ||X*w - y||^2 via the normal
 * equations (X^T X + ridge*I) w = X^T y.
 *
 * @param x Design matrix, one row per sample (include a 1-column for bias).
 * @param y Targets, length x.rows().
 * @param ridge Small Tikhonov term for numerical robustness.
 */
std::vector<double> leastSquares(const Matrix &x, const std::vector<double> &y,
                                 double ridge = 1e-9);

}  // namespace temp
