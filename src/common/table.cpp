#include "common/table.hpp"

#include <cstdio>

namespace temp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TablePrinter::fmtX(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, value);
    return buf;
}

std::string
TablePrinter::fmtPct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * fraction);
    return buf;
}

void
TablePrinter::print(const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    if (!title.empty())
        std::printf("\n== %s ==\n", title.c_str());

    auto print_row = [&](const std::vector<std::string> &cells) {
        std::printf("|");
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
        }
        std::printf("\n");
    };

    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        for (std::size_t i = 0; i < widths[c] + 2; ++i)
            std::printf("-");
        std::printf("|");
    }
    std::printf("\n");
    for (const auto &row : rows_)
        print_row(row);
}

}  // namespace temp
