/**
 * @file
 * Cooperative solve budgets: the one primitive the deadline-bounded
 * solve path shares across layers (solver -> engines -> evaluators ->
 * serve -> scenario).
 *
 * Two classes, one contract:
 *
 *  - CancelToken: a shared cooperative cancel flag. Anything holding a
 *    copy may request cancellation; workers observe it at *quantum
 *    boundaries only* (between fitness batches, never mid-batch), so a
 *    cancelled solve still returns a bit-exact partial result.
 *  - BudgetGauge: the per-solve meter. It counts deterministic quanta
 *    (full-step fitness queries, cache-served or not — a warm and a
 *    cold solve charge identically) against an optional quantum cap,
 *    an optional wall-clock cap and the cancel token.
 *
 * Determinism rule: exhaustion by quantum cap is a pure function of
 * the work charged, so equal (request, quantum budget) trips at the
 * same boundary on any machine. Wall-clock caps and cancel tokens are
 * inherently nondeterministic; because they are only observed between
 * quanta they can only *round the run down to a quantum boundary* —
 * every result they produce is one the pure quantum budget could have
 * produced.
 *
 * Once exhausted() has returned true it stays true (the trip latches),
 * so every layer of one solve agrees on where the run stopped.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace temp::common {

/// Shared cooperative cancel flag. Copies alias one flag; a
/// default-constructed token is unarmed and never reports cancellation.
class CancelToken
{
  public:
    CancelToken() = default;

    /// A fresh, armed token (its own flag, not yet cancelled).
    static CancelToken make()
    {
        CancelToken token;
        token.flag_ = std::make_shared<std::atomic<bool>>(false);
        return token;
    }

    /// True when this token aliases a real flag.
    bool armed() const { return flag_ != nullptr; }

    /// Requests cooperative cancellation (no-op when unarmed).
    void requestCancel() const
    {
        if (flag_)
            flag_->store(true, std::memory_order_relaxed);
    }

    /// True once cancellation was requested (false when unarmed).
    bool cancelRequested() const
    {
        return flag_ && flag_->load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/**
 * The per-solve budget meter. Not thread-safe by design: one gauge
 * belongs to one solve thread (the cross-thread channel is the
 * CancelToken, which is atomic). Caps of 0 mean unlimited.
 */
class BudgetGauge
{
  public:
    BudgetGauge() = default;

    BudgetGauge(long max_quanta, double max_wall_ms, CancelToken cancel)
        : max_quanta_(max_quanta), max_wall_ms_(max_wall_ms),
          cancel_(std::move(cancel)),
          start_(std::chrono::steady_clock::now())
    {
    }

    /// True when any cap (quanta, wall clock or cancel token) binds.
    bool limited() const
    {
        return max_quanta_ > 0 || max_wall_ms_ > 0.0 || cancel_.armed();
    }

    /// Charges completed quanta (one per full-step fitness query,
    /// whether the memo served it or a simulation ran).
    void charge(long quanta) { used_ += quanta; }

    /// Quanta charged so far.
    long used() const { return used_; }

    /// True once the run is over budget. Latched: after the first true
    /// it never reverts, so every layer agrees on the stop boundary.
    /// Call only at quantum boundaries (between batches).
    bool exhausted()
    {
        if (tripped_)
            return true;
        if (max_quanta_ > 0 && used_ >= max_quanta_)
            tripped_ = true;
        else if (cancel_.cancelRequested())
            tripped_ = true;
        else if (max_wall_ms_ > 0.0 && elapsedMs() >= max_wall_ms_)
            tripped_ = true;
        return tripped_;
    }

    /// Whether exhausted() has already tripped (no fresh check).
    bool tripped() const { return tripped_; }

    const CancelToken &cancelToken() const { return cancel_; }

  private:
    double elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    long max_quanta_ = 0;
    double max_wall_ms_ = 0.0;
    CancelToken cancel_;
    std::chrono::steady_clock::time_point start_{};
    long used_ = 0;
    bool tripped_ = false;
};

}  // namespace temp::common
