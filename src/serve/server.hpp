/**
 * @file
 * The network front end of TempService: one listener speaking both
 * wire protocols, routed through the coalescing/admission dispatcher.
 *
 * Protocol sniffing: the first byte of a connection decides its mode.
 * A control byte (< 0x20) can only be the MSB of a framed-RPC length
 * prefix, anything else is treated as HTTP/1.1. Both modes share the
 * same session core — parse a request document, dispatch it, render
 * the Response to JSON — so a response is byte-identical regardless of
 * transport.
 *
 *  - Framed RPC: any number of length-prefixed JSON requests per
 *    connection, answered in order. Parse errors are answered in-band
 *    ({"ok":false,"error":...}) and keep the connection open.
 *  - HTTP/1.1: one request per connection. POST /v1/requests runs a
 *    request document (200 on execution, 400 on malformed documents,
 *    503 when shed); GET /healthz and GET /stats serve liveness and
 *    dispatcher counters.
 *
 * Graceful drain (stop(), the SIGINT contract): close the listener,
 * shut down session reads (in-flight requests finish and their
 * responses are written; no new requests are read), drain the
 * dispatcher, join every thread. After stop() returns, no thread of
 * the server is alive and every accepted request was answered.
 */
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/dispatcher.hpp"

namespace temp::serve {

struct ServerOptions
{
    /// Bind address; tests and the load bench use loopback.
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    int port = 0;
    /**
     * Cap on concurrent connections. Accepts beyond the cap are
     * closed immediately — the connection-level counterpart of the
     * dispatcher's admission control, so a connection flood cannot
     * spawn unbounded session threads.
     */
    int max_sessions = 64;
    DispatcherOptions dispatcher;
};

class Server
{
  public:
    Server(api::TempService &service, ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Binds, listens and starts the accept loop.
     *
     * @return false with *error set (e.g. address in use) and no
     *         threads running.
     */
    bool start(std::string *error);

    /// The bound TCP port (resolves port 0 requests).
    int port() const { return port_; }

    /// Graceful drain; idempotent, called by the destructor.
    void stop();

    DispatchStats stats() const { return dispatcher_.stats(); }

  private:
    void acceptLoop();
    /// Moves threads of completed sessions out of session_threads_
    /// for the caller to join outside the lock.
    void reapFinishedLocked(std::vector<std::thread> *out);
    void session(int fd);
    void serveFramed(int fd);
    void serveHttp(int fd);
    /// The shared session core: request JSON in, response JSON out,
    /// with the HTTP status (200/400/503/500) for serveHttp; the
    /// framed transport answers everything in-band and ignores it.
    std::string handle(const std::string &request_json, int *status);

    api::TempService &service_;
    ServerOptions options_;
    Dispatcher dispatcher_;

    /**
     * Written by start() before the accept thread exists and by
     * stop() only after joining it; the accept loop is the sole
     * concurrent reader, so no synchronization is needed.
     */
    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread accept_thread_;
    std::mutex sessions_mutex_;
    /// Live connection fds, for shutdown during drain.
    std::vector<int> session_fds_;
    /**
     * Session threads still to be joined, keyed by thread id. A
     * finishing session records its id in finished_session_ids_; the
     * accept loop reaps (joins) those on the next connection, and
     * stop() joins whatever remains — so the set stays bounded by the
     * session cap instead of growing for the life of the server.
     */
    std::unordered_map<std::thread::id, std::thread> session_threads_;
    std::vector<std::thread::id> finished_session_ids_;
};

}  // namespace temp::serve
