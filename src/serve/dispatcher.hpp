/**
 * @file
 * The service-layer request dispatcher: in-flight coalescing,
 * admission control and per-tenant fair scheduling in front of
 * TempService.
 *
 * Three behaviors compose here, all keyed on the canonical request
 * content key (api/request_key.hpp):
 *
 *  - **Coalescing.** A request whose key matches one already admitted
 *    (queued or executing) attaches to that request's shared future
 *    instead of being solved again: N identical concurrent requests
 *    cost exactly one solve. Every rider's response is personalized
 *    (tenant, coalesced flag) but carries the same payload and the
 *    shared `coalesced_requests` count. CacheStats requests are never
 *    coalesced — their answer depends on *when* they run.
 *
 *  - **Admission control.** The total number of queued-not-yet-
 *    executing requests is bounded; beyond the bound dispatch()
 *    returns an explicit shed Response (ok=false, shed=true)
 *    immediately instead of letting latency grow without bound.
 *    Coalesced attachments bypass the bound — they consume no queue
 *    slot and no solve.
 *
 *  - **Fairness.** Queued work is held in per-tenant FIFOs drained
 *    round-robin, so a tenant flooding the queue cannot starve a
 *    tenant sending one request. The tenant id is the client-supplied
 *    envelope field ("" = anonymous, itself one tenant).
 *
 * Graceful drain: stop() refuses new work (shed with a drain message),
 * lets everything already admitted finish, then joins the workers —
 * the contract behind the server's SIGINT handling.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/requests.hpp"
#include "api/service.hpp"
#include "solver/solve_budget.hpp"

namespace temp::serve {

struct DispatcherOptions
{
    /// Worker threads executing solves (the service itself also
    /// parallelizes inside one solve via eval_threads).
    int workers = 2;
    /// Queued-request bound; admission control sheds beyond it.
    int max_queue = 64;
    /**
     * Per-request deadline (milliseconds; 0 = off). A request that
     * sat in the queue past its deadline is shed with an explicit
     * deadline_exceeded Response at dequeue time instead of running a
     * solve nobody is waiting for. A request dequeued *within* its
     * deadline executes under a SolveBudget whose wall cap is the
     * deadline's remainder (deadline_ms - queue wait) plus a cancel
     * token, so an in-flight solve that outlives the deadline stops at
     * the next quantum boundary and returns its best-so-far partial
     * (Response.budget_exhausted) instead of holding the worker.
     * Riders coalesced onto an expired request share its deadline
     * response (the solve they attached to never ran); riders on a
     * truncated solve share the flagged partial — serve.deadline_ms is
     * process-wide policy, so one truncation answers all attached
     * requests. Comes from the `serve.deadline_ms` config key.
     */
    int deadline_ms = 0;
    /**
     * Test seam: replaces TempService::run as the executor. Lets tests
     * gate execution (to hold requests in flight deterministically)
     * and count solves without a real service. Receives the SolveBudget
     * the dispatcher would hand the service (unlimited when
     * deadline_ms is off), so tests can drive mid-solve cancellation
     * through the budget's cancel token.
     */
    std::function<api::Response(const api::Request &,
                                const solver::SolveBudget &)>
        executor;
};

/// Monotonic dispatcher counters (one snapshot is internally
/// consistent: accepted == coalesced + executed + shed once idle).
struct DispatchStats
{
    long accepted = 0;   ///< dispatch() calls
    long coalesced = 0;  ///< answered by attaching to an in-flight key
    long executed = 0;   ///< solves actually run
    long shed = 0;       ///< rejected by admission control
    /// Shed because the request outwaited its deadline in the queue
    /// (a subset of `shed`: the accounting identity is unchanged).
    long deadline_expired = 0;
    /// Executed under a serve deadline and stopped at a budget
    /// boundary, returning a flagged best-so-far partial (a subset of
    /// `executed`: the accounting identity is unchanged).
    long deadline_cancelled = 0;
    long completed = 0;  ///< responses delivered (riders included)
};

class Dispatcher
{
  public:
    Dispatcher(api::TempService &service, DispatcherOptions options);
    ~Dispatcher();

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /**
     * Admits, possibly coalesces, and waits for one request; blocks
     * the calling (per-connection) thread until the response is
     * ready. Always returns: a shed Response when admission control
     * rejects, a drain Response after stop().
     */
    api::Response dispatch(const api::Request &request,
                           const std::string &tenant);

    /**
     * Graceful drain: stop admitting, finish everything already
     * admitted (queued and executing, riders answered), then stop the
     * workers. Idempotent; called by the destructor.
     */
    void stop();

    DispatchStats stats() const;

    /// Queued + executing right now (0 once drained).
    int inFlight() const;

  private:
    /// One admitted solve; riders share it. Immutable after the entry
    /// leaves the in-flight map (which happens before the promise is
    /// fulfilled, under the dispatcher lock — so a key in the map is
    /// always attachable and attached counts are stable once ready).
    struct Entry
    {
        std::promise<api::Response> promise;
        std::shared_future<api::Response> future;
        long attached = 1;
    };

    struct Work
    {
        api::Request request;
        std::string key;
        std::shared_ptr<Entry> entry;
        /// Admission time; the deadline clock starts here.
        std::chrono::steady_clock::time_point admitted_at;
    };

    void workerLoop();
    std::shared_ptr<Work> nextWorkLocked();
    api::Response refuse(const api::Request &request,
                         const std::string &tenant,
                         const std::string &error) const;

    api::TempService &service_;
    DispatcherOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable idle_;
    /// stop() has begun: no new admissions (drain refusals).
    bool stopping_ = false;
    /// The drain is complete: workers may exit.
    bool shutdown_ = false;
    int queued_ = 0;
    int executing_ = 0;
    DispatchStats stats_;
    /// Canonical key -> admitted solve (insert at admit, erase just
    /// before fulfilment).
    std::unordered_map<std::string, std::shared_ptr<Entry>> in_flight_;
    /// Per-tenant FIFOs + round-robin order (tenants in first-seen
    /// order; empty queues are skipped, not removed).
    std::unordered_map<std::string, std::deque<std::shared_ptr<Work>>>
        queues_;
    std::vector<std::string> tenant_order_;
    std::size_t rr_cursor_ = 0;
    std::vector<std::thread> workers_;
};

}  // namespace temp::serve
