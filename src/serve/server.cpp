#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/request_io.hpp"
#include "api/serialize.hpp"
#include "serve/wire.hpp"

namespace temp::serve {

Server::Server(api::TempService &service, ServerOptions options)
    : service_(service), options_(std::move(options)),
      dispatcher_(service, options_.dispatcher)
{
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *error)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
        1) {
        *error = "invalid bind address '" + options_.host + "'";
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        *error = "bind " + options_.host + ":" +
                 std::to_string(options_.port) + ": " +
                 std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::listen(listen_fd_, 64) != 0) {
        *error = std::string("listen: ") + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    socklen_t addr_len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                  &addr_len);
    port_ = ntohs(addr.sin_port);

    accept_thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // listener shut down (stop) or fatal
        }
        std::vector<std::thread> finished;
        {
            std::lock_guard<std::mutex> lock(sessions_mutex_);
            if (stopping_.load()) {
                ::close(fd);
                return;
            }
            reapFinishedLocked(&finished);
            if (static_cast<int>(session_fds_.size()) >=
                options_.max_sessions) {
                // Over the session cap: refuse at the transport. The
                // dispatcher's admission control bounds queued work;
                // this bounds the threads feeding it.
                ::close(fd);
            } else {
                session_fds_.push_back(fd);
                // Created under the lock: the session's exit epilogue
                // needs the same lock, so its id is registered here
                // before it could ever report itself finished.
                std::thread thread([this, fd] { session(fd); });
                const std::thread::id id = thread.get_id();
                session_threads_.emplace(id, std::move(thread));
            }
        }
        for (std::thread &thread : finished)
            thread.join();
    }
}

void
Server::reapFinishedLocked(std::vector<std::thread> *out)
{
    for (const std::thread::id id : finished_session_ids_) {
        const auto it = session_threads_.find(id);
        if (it != session_threads_.end()) {
            out->push_back(std::move(it->second));
            session_threads_.erase(it);
        }
    }
    finished_session_ids_.clear();
}

std::string
Server::handle(const std::string &request_json, int *status)
{
    api::ParsedRequest request;
    std::string error;
    if (!parseRequest(request_json, &request, &error)) {
        *status = 400;
        return api::JsonObject()
            .add("ok", false)
            .add("error", error)
            .str();
    }
    try {
        const api::Response response =
            dispatcher_.dispatch(request.request, request.tenant);
        *status = response.shed ? 503 : 200;
        return api::toJson(response);
    } catch (const std::exception &e) {
        // A session thread must answer, never terminate the process.
        *status = 500;
        return api::JsonObject()
            .add("ok", false)
            .add("error", std::string("internal error: ") + e.what())
            .str();
    }
}

void
Server::serveFramed(int fd)
{
    for (;;) {
        std::string payload;
        std::string error;
        if (!readFrame(fd, &payload, &error)) {
            // In-band answer for protocol violations; plain EOF (or a
            // drain shutdown) ends the session silently.
            if (!error.empty())
                writeFrame(fd, api::JsonObject()
                                   .add("ok", false)
                                   .add("error", error)
                                   .str());
            return;
        }
        int status = 0;
        if (!writeFrame(fd, handle(payload, &status)))
            return;
    }
}

void
Server::serveHttp(int fd)
{
    // Persistent connections: the loop serves requests until the
    // client (or HTTP/1.0 default) asks for close, EOF, or a protocol
    // error. A kept-alive connection holds its session slot, so
    // max_sessions bounds concurrent HTTP clients exactly like framed
    // ones.
    for (;;) {
        HttpRequest request;
        std::string error;
        if (!readHttpRequest(fd, &request, &error)) {
            // In-band 400 for protocol violations; plain EOF (the
            // normal end of a keep-alive session) ends it silently.
            if (!error.empty()) {
                const std::string body = api::JsonObject()
                                             .add("ok", false)
                                             .add("error", error)
                                             .str();
                const std::string response = httpResponse(400, body);
                writeAll(fd, response.data(), response.size());
            }
            return;
        }

        int status = 200;
        std::string body;
        if (request.method == "POST" &&
            request.target == "/v1/requests") {
            body = handle(request.body, &status);
        } else if (request.method == "GET" &&
                   request.target == "/healthz") {
            body = api::JsonObject().add("ok", true).str();
        } else if (request.method == "GET" &&
                   request.target == "/stats") {
            const DispatchStats stats = dispatcher_.stats();
            body = api::JsonObject()
                       .add("ok", true)
                       .add("accepted", stats.accepted)
                       .add("coalesced", stats.coalesced)
                       .add("executed", stats.executed)
                       .add("shed", stats.shed)
                       .add("completed", stats.completed)
                       .add("in_flight",
                            static_cast<long>(dispatcher_.inFlight()))
                       .str();
        } else {
            status = 404;
            body = api::JsonObject()
                       .add("ok", false)
                       .add("error", "no such endpoint (use POST "
                                     "/v1/requests, GET /healthz, "
                                     "GET /stats)")
                       .str();
        }
        const std::string response =
            httpResponse(status, body, request.keep_alive);
        if (!writeAll(fd, response.data(), response.size()) ||
            !request.keep_alive)
            return;
    }
}

void
Server::session(int fd)
{
    char first = 0;
    const ssize_t peeked = ::recv(fd, &first, 1, MSG_PEEK);
    if (peeked == 1) {
        // A framed-RPC length prefix of any sane payload starts with a
        // control byte; no HTTP method does.
        if (static_cast<unsigned char>(first) < 0x20)
            serveFramed(fd);
        else
            serveHttp(fd);
    }
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    session_fds_.erase(std::remove(session_fds_.begin(),
                                   session_fds_.end(), fd),
                       session_fds_.end());
    // Close under the sessions lock: stop() shuts live fds down under
    // the same lock, so a recycled descriptor can never be hit.
    ::close(fd);
    finished_session_ids_.push_back(std::this_thread::get_id());
}

void
Server::stop()
{
    if (stopping_.exchange(true))
        return;
    if (listen_fd_ >= 0) {
        // Unblock accept(); the loop exits on the failed accept. The
        // fd is closed (and listen_fd_ written) only after the accept
        // thread joins, so it never races the loop's reads and the
        // descriptor cannot be recycled under a live accept().
        ::shutdown(listen_fd_, SHUT_RDWR);
    }
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }

    std::vector<std::thread> sessions;
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        // Half-close live connections: blocked reads return EOF so no
        // session picks up *new* requests, while requests already
        // dispatched still finish and their responses still write.
        for (const int fd : session_fds_)
            ::shutdown(fd, SHUT_RD);
        for (auto &[id, thread] : session_threads_)
            sessions.push_back(std::move(thread));
        session_threads_.clear();
        finished_session_ids_.clear();
    }
    for (std::thread &thread : sessions)
        thread.join();

    // All sessions answered; drain whatever the dispatcher still
    // holds and stop its workers.
    dispatcher_.stop();
}

}  // namespace temp::serve
