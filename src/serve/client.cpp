#include "serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/request_io.hpp"
#include "common/rng.hpp"
#include "serve/wire.hpp"

namespace temp::serve {

namespace {

int
dial(const std::string &host, int port, std::string *error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        *error = "invalid address '" + host + "'";
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        *error = "connect " + host + ":" + std::to_string(port) +
                 ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * dial() under a RetryPolicy: exponential backoff with full jitter
 * (each sleep is uniform in [delay/2, delay]) drawn from a generator
 * seeded per call, so a policy's delay sequence is deterministic. An
 * invalid address fails immediately — only transient dial failures
 * (connection refused, unreachable) are worth waiting out.
 */
int
dialWithRetry(const std::string &host, int port,
              const RetryPolicy &retry, std::string *error)
{
    int fd = dial(host, port, error);
    if (fd >= 0 || retry.retries <= 0)
        return fd;
    if (error->rfind("invalid address", 0) == 0)
        return fd;
    Rng rng(retry.jitter_seed);
    double delay_ms = std::max(1, retry.base_delay_ms);
    for (int attempt = 0; attempt < retry.retries; ++attempt) {
        const double jittered =
            rng.uniformReal(delay_ms / 2.0, delay_ms);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(jittered));
        fd = dial(host, port, error);
        if (fd >= 0)
            return fd;
        delay_ms = std::min(
            delay_ms * 2.0,
            static_cast<double>(std::max(1, retry.max_delay_ms)));
    }
    *error += " (after " + std::to_string(retry.retries + 1) +
              " attempts)";
    return -1;
}

}  // namespace

Client::~Client()
{
    close();
}

bool
Client::connect(const std::string &host, int port, std::string *error)
{
    return connect(host, port, RetryPolicy{}, error);
}

bool
Client::connect(const std::string &host, int port,
                const RetryPolicy &retry, std::string *error)
{
    close();
    fd_ = dialWithRetry(host, port, retry, error);
    return fd_ >= 0;
}

bool
Client::callRaw(const std::string &request_json,
                std::string *response_json, std::string *error)
{
    if (fd_ < 0) {
        *error = "not connected";
        return false;
    }
    if (!writeFrame(fd_, request_json)) {
        *error = "connection lost while sending";
        close();
        return false;
    }
    std::string frame_error;
    if (!readFrame(fd_, response_json, &frame_error)) {
        *error = frame_error.empty()
                     ? "connection closed before response"
                     : frame_error;
        close();
        return false;
    }
    return true;
}

bool
Client::call(const api::Request &request, const std::string &tenant,
             std::string *response_json, std::string *error)
{
    return callRaw(api::toJson(request, tenant), response_json, error);
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::httpPost(const std::string &host, int port,
                 const std::string &target, const std::string &body,
                 int *status, std::string *response_body,
                 std::string *error)
{
    const int fd = dial(host, port, error);
    if (fd < 0)
        return false;
    // An empty body means a GET probe (/healthz, /stats); a document
    // means POST. Both are single-shot: the server answers with
    // Connection: close.
    std::string head;
    if (body.empty()) {
        head = "GET " + target + " HTTP/1.1\r\n";
    } else {
        head = "POST " + target + " HTTP/1.1\r\n";
        head += "Content-Length: " + std::to_string(body.size()) +
                "\r\n";
    }
    head += "Host: " + host + "\r\n";
    head += "Connection: close\r\n\r\n";
    const std::string message = head + body;
    bool ok = writeAll(fd, message.data(), message.size()) &&
              readHttpResponse(fd, status, response_body, error);
    if (!ok && error->empty())
        *error = "http transport failure";
    ::close(fd);
    return ok;
}

HttpClient::~HttpClient()
{
    close();
}

bool
HttpClient::connect(const std::string &host, int port,
                    std::string *error)
{
    return connect(host, port, RetryPolicy{}, error);
}

bool
HttpClient::connect(const std::string &host, int port,
                    const RetryPolicy &retry, std::string *error)
{
    close();
    fd_ = dialWithRetry(host, port, retry, error);
    if (fd_ >= 0)
        host_ = host;
    return fd_ >= 0;
}

bool
HttpClient::exchange(const std::string &target, const std::string &body,
                     int *status, std::string *response_body,
                     std::string *error)
{
    if (fd_ < 0) {
        *error = "not connected";
        return false;
    }
    std::string head;
    if (body.empty()) {
        head = "GET " + target + " HTTP/1.1\r\n";
    } else {
        head = "POST " + target + " HTTP/1.1\r\n";
        head += "Content-Length: " + std::to_string(body.size()) +
                "\r\n";
    }
    head += "Host: " + host_ + "\r\n";
    head += "Connection: keep-alive\r\n\r\n";
    const std::string message = head + body;
    const bool ok =
        writeAll(fd_, message.data(), message.size()) &&
        readHttpResponse(fd_, status, response_body, error);
    if (!ok) {
        if (error->empty())
            *error = "http transport failure";
        close();
    }
    return ok;
}

void
HttpClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace temp::serve
