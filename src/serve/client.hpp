/**
 * @file
 * In-process clients for both wire protocols — what the tests, the
 * load bench and `temp_cli request --connect` speak.
 *
 * Client holds one framed-RPC connection and answers call()s
 * sequentially on it (one outstanding request per connection; run
 * several Clients for concurrency). HttpClient is the HTTP/1.1
 * counterpart: one keep-alive connection carrying sequential
 * exchanges. httpPost() remains the one-shot form (fresh connection,
 * Connection: close) for probes and scripts.
 */
#pragma once

#include <cstdint>
#include <string>

#include "api/requests.hpp"

namespace temp::serve {

/**
 * Bounded reconnection policy for transient dial failures (the server
 * not yet listening, a connection refused mid-restart). Off by default
 * — retries = 0 keeps connect() a single attempt, so nothing changes
 * for callers that want fail-fast. Backoff is exponential
 * (base_delay_ms doubling up to max_delay_ms) with deterministic
 * jitter drawn from jitter_seed: the delay sequence of a given policy
 * is reproducible, which keeps tests and the load bench stable.
 */
struct RetryPolicy
{
    int retries = 0;          ///< extra attempts after the first dial
    int base_delay_ms = 20;   ///< first backoff delay
    int max_delay_ms = 1000;  ///< backoff ceiling
    std::uint64_t jitter_seed = 1;
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /// Opens the framed-RPC connection; with a RetryPolicy, transient
    /// dial failures are retried under jittered exponential backoff.
    bool connect(const std::string &host, int port,
                 std::string *error);
    bool connect(const std::string &host, int port,
                 const RetryPolicy &retry, std::string *error);

    /// True between a successful connect() and close().
    bool connected() const { return fd_ >= 0; }

    /**
     * Sends one raw request document and waits for the response
     * document.
     *
     * @return false with *error set on transport failure (the
     *         connection is closed then); server-side errors are
     *         successful calls whose document says ok=false.
     */
    bool callRaw(const std::string &request_json,
                 std::string *response_json, std::string *error);

    /// Typed convenience: serializes the request with the envelope
    /// tenant and calls callRaw.
    bool call(const api::Request &request, const std::string &tenant,
              std::string *response_json, std::string *error);

    void close();

    /**
     * One-shot HTTP POST of a request document to /v1/requests (or
     * GET when body is empty and target says otherwise — see the
     * implementation; tests use it for /healthz and /stats too).
     */
    static bool httpPost(const std::string &host, int port,
                         const std::string &target,
                         const std::string &body, int *status,
                         std::string *response_body,
                         std::string *error);

  private:
    int fd_ = -1;
};

/**
 * A persistent HTTP/1.1 connection: requests are sent with keep-alive
 * semantics, so sequential exchange()s reuse one socket (and hold one
 * server session slot). A transport failure closes the connection;
 * callers may reconnect().
 */
class HttpClient
{
  public:
    HttpClient() = default;
    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    bool connect(const std::string &host, int port,
                 std::string *error);
    bool connect(const std::string &host, int port,
                 const RetryPolicy &retry, std::string *error);
    bool connected() const { return fd_ >= 0; }

    /**
     * One HTTP exchange on the live connection: POST when @p body is
     * non-empty, GET otherwise (mirroring httpPost). The request asks
     * for keep-alive, so the server leaves the socket open for the
     * next exchange. A transport failure closes the connection and
     * turns connected() false.
     */
    bool exchange(const std::string &target, const std::string &body,
                  int *status, std::string *response_body,
                  std::string *error);

    void close();

  private:
    int fd_ = -1;
    std::string host_;
};

}  // namespace temp::serve
