/**
 * @file
 * Wire-level helpers shared by the server and the client: robust
 * socket I/O (EINTR-safe, SIGPIPE-free), the length-prefixed framed-
 * RPC encoding, and a minimal HTTP/1.1 request/response codec.
 *
 * Framed RPC: each message is a 4-byte big-endian payload length
 * followed by that many bytes of JSON. The length is capped (64 MB) so
 * a hostile peer cannot make the server allocate unboundedly. The
 * first byte of a frame is a length MSB < 0x20, which is what lets the
 * server sniff the protocol: no HTTP method starts with a control
 * byte.
 *
 * HTTP: enough of HTTP/1.1 for the service surface — Content-Length
 * bodies only (no chunked encoding), with standard persistent-
 * connection semantics: HTTP/1.1 requests keep the connection alive
 * unless they say Connection: close, HTTP/1.0 requests close unless
 * they say Connection: keep-alive, and the response echoes the
 * decision so the client never guesses.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace temp::serve {

/// Largest accepted frame/body payload (hostile-input allocation cap).
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

/// @{ EINTR-safe exact-length socket I/O. readExact returns false on
/// EOF or error; writeAll sends with SIGPIPE suppressed (a vanished
/// peer is a false return, not a process signal).
bool readExact(int fd, void *buffer, std::size_t length);
bool writeAll(int fd, const void *buffer, std::size_t length);
/// @}

/// Prepends the 4-byte big-endian length header.
std::string encodeFrame(const std::string &payload);

/**
 * Reads one length-prefixed frame.
 *
 * @return false on clean EOF (*error empty) or protocol error
 *         (*error set, e.g. oversized frame).
 */
bool readFrame(int fd, std::string *payload, std::string *error);

/// Writes one frame; false when the peer is gone.
bool writeFrame(int fd, const std::string &payload);

/// One parsed HTTP request (head + body).
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< "/v1/requests"
    std::string body;
    /// Whether the connection should survive this exchange: HTTP/1.1
    /// default, Connection header override, HTTP/1.0 defaults false.
    bool keep_alive = true;
};

/**
 * Reads one HTTP request from the socket: head until CRLFCRLF
 * (bounded), then a Content-Length body (bounded by
 * kMaxPayloadBytes). Sets keep_alive from the request version and
 * Connection header.
 *
 * @return false on EOF before a complete head (*error empty when the
 *         connection closed before any byte arrived) or malformed
 *         input (*error set).
 */
bool readHttpRequest(int fd, HttpRequest *out, std::string *error);

/// Renders a complete HTTP/1.1 response (status line, JSON content
/// type, Content-Length, Connection: keep-alive or close per
/// @p keep_alive).
std::string httpResponse(int status, const std::string &body,
                         bool keep_alive = false);

/**
 * Reads one HTTP/1.1 response (client side).
 *
 * @return false with *error set on EOF or malformed input.
 */
bool readHttpResponse(int fd, int *status, std::string *body,
                      std::string *error);

}  // namespace temp::serve
