#include "serve/dispatcher.hpp"

#include <algorithm>

#include "api/request_key.hpp"

namespace temp::serve {

namespace {

/// Request -> RequestKind; the variant alternatives and the enum are
/// declared in the same order in api/requests.hpp.
api::RequestKind
kindOf(const api::Request &request)
{
    return static_cast<api::RequestKind>(request.index());
}

}  // namespace

Dispatcher::Dispatcher(api::TempService &service,
                       DispatcherOptions options)
    : service_(service), options_(std::move(options))
{
    const int workers = std::max(1, options_.workers);
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Dispatcher::~Dispatcher()
{
    stop();
}

api::Response
Dispatcher::refuse(const api::Request &request,
                   const std::string &tenant,
                   const std::string &error) const
{
    api::Response response;
    response.kind = kindOf(request);
    response.ok = false;
    response.shed = true;
    response.error = error;
    response.tenant = tenant;
    return response;
}

api::Response
Dispatcher::dispatch(const api::Request &request,
                     const std::string &tenant)
{
    // CacheStats snapshots are time-dependent: two of them are not
    // interchangeable, so they are admitted but never coalesced.
    const bool coalescable =
        !std::holds_alternative<api::CacheStatsRequest>(request);
    const std::string key = api::requestKey(request);

    std::shared_ptr<Entry> entry;
    bool rider = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ++stats_.accepted;
        if (stopping_) {
            ++stats_.shed;
            return refuse(request, tenant,
                          "service is draining; request rejected");
        }
        if (coalescable) {
            const auto it = in_flight_.find(key);
            if (it != in_flight_.end()) {
                // Attach: no queue slot, no solve — the admission
                // bound deliberately does not apply to riders.
                entry = it->second;
                ++entry->attached;
                ++stats_.coalesced;
                rider = true;
            }
        }
        if (!entry) {
            if (queued_ >= options_.max_queue) {
                ++stats_.shed;
                return refuse(request, tenant,
                              "queue full (" +
                                  std::to_string(options_.max_queue) +
                                  " requests); request shed");
            }
            entry = std::make_shared<Entry>();
            entry->future = entry->promise.get_future().share();
            auto work = std::make_shared<Work>();
            work->request = request;
            work->key = key;
            work->entry = entry;
            work->admitted_at = std::chrono::steady_clock::now();
            if (coalescable)
                in_flight_.emplace(key, entry);
            const auto [queue, fresh] = queues_.try_emplace(tenant);
            if (fresh)
                tenant_order_.push_back(tenant);
            queue->second.push_back(std::move(work));
            ++queued_;
            work_ready_.notify_one();
        }
    }

    api::Response response = entry->future.get();
    // `attached` is final once the future is ready: the entry left the
    // in-flight map (under the lock) before fulfilment, so no rider
    // can attach afterwards.
    response.coalesced_requests = entry->attached;
    response.coalesced = rider;
    response.tenant = tenant;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.completed;
    }
    return response;
}

std::shared_ptr<Dispatcher::Work>
Dispatcher::nextWorkLocked()
{
    // Round robin across tenants in first-seen order; the cursor
    // advances past the served tenant so the next dequeue starts at
    // its successor.
    for (std::size_t step = 0; step < tenant_order_.size(); ++step) {
        auto &queue = queues_[tenant_order_[rr_cursor_]];
        rr_cursor_ = (rr_cursor_ + 1) % tenant_order_.size();
        if (!queue.empty()) {
            std::shared_ptr<Work> work = std::move(queue.front());
            queue.pop_front();
            --queued_;
            return work;
        }
    }
    return nullptr;
}

void
Dispatcher::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_ready_.wait(lock,
                         [this] { return queued_ > 0 || shutdown_; });
        if (queued_ == 0) {
            if (shutdown_)
                return;
            continue;
        }
        const std::shared_ptr<Work> work = nextWorkLocked();
        ++executing_;

        // Deadline check at dequeue time: a request that already
        // outwaited serve.deadline_ms gets an explicit shed response
        // instead of a solve whose answer nobody is waiting for.
        bool expired = false;
        double waited_ms = 0.0;
        if (options_.deadline_ms > 0) {
            waited_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() -
                            work->admitted_at)
                            .count();
            expired = waited_ms >
                      static_cast<double>(options_.deadline_ms);
        }
        lock.unlock();

        api::Response response;
        if (expired) {
            response.kind = kindOf(work->request);
            response.ok = false;
            response.shed = true;
            response.deadline_exceeded = true;
            response.error =
                "deadline exceeded: queued " +
                std::to_string(static_cast<long>(waited_ms)) +
                " ms > serve.deadline_ms=" +
                std::to_string(options_.deadline_ms) +
                "; request shed";
        } else {
            // Execute under the deadline's remainder: queue wait
            // already consumed part of serve.deadline_ms, so the solve
            // gets what is left as a wall cap plus an armed cancel
            // token. The solver stops at the next quantum boundary
            // after either trips and returns its best-so-far partial
            // flagged budget_exhausted — the worker is never held past
            // the deadline by more than one quantum.
            solver::SolveBudget budget;
            if (options_.deadline_ms > 0) {
                budget.max_wall_ms =
                    static_cast<double>(options_.deadline_ms) -
                    waited_ms;
                budget.cancel = common::CancelToken::make();
            }
            response = options_.executor
                           ? options_.executor(work->request, budget)
                           : service_.run(work->request, budget);
        }

        lock.lock();
        if (expired) {
            ++stats_.shed;
            ++stats_.deadline_expired;
        } else {
            ++stats_.executed;
            if (options_.deadline_ms > 0 && response.budget_exhausted)
                ++stats_.deadline_cancelled;
        }
        // Erase before fulfilment, under the lock: a key present in
        // the map is always safely attachable, and attached counts
        // freeze here.
        in_flight_.erase(work->key);
        --executing_;
        if (queued_ == 0 && executing_ == 0)
            idle_.notify_all();
        lock.unlock();
        // Fulfil outside the lock so woken waiters never pile up on
        // the dispatcher mutex.
        work->entry->promise.set_value(std::move(response));
        lock.lock();
    }
}

void
Dispatcher::stop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    idle_.wait(lock,
               [this] { return queued_ == 0 && executing_ == 0; });
    shutdown_ = true;
    work_ready_.notify_all();
    std::vector<std::thread> workers = std::move(workers_);
    workers_.clear();
    lock.unlock();
    for (std::thread &worker : workers)
        worker.join();
}

DispatchStats
Dispatcher::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

int
Dispatcher::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_ + executing_;
}

}  // namespace temp::serve
