#include "serve/wire.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace temp::serve {

namespace {

constexpr std::size_t kMaxHeadBytes = 64u << 10;

/// Reads up to the CRLFCRLF head terminator, byte-at-a-time.
/// Byte-at-a-time cannot over-read into the body — which is also what
/// keeps keep-alive simple: after the Content-Length body, the cursor
/// sits exactly at the next request's first byte.
bool
readHead(int fd, std::string *head, std::string *error)
{
    head->clear();
    char c = 0;
    while (head->size() < kMaxHeadBytes) {
        if (!readExact(fd, &c, 1)) {
            if (!head->empty())
                *error = "truncated http head";
            return false;
        }
        head->push_back(c);
        if (head->size() >= 4 &&
            head->compare(head->size() - 4, 4, "\r\n\r\n") == 0)
            return true;
    }
    *error = "http head exceeds 64 KiB";
    return false;
}

/// Case-insensitive Content-Length lookup; -1 when absent, -2 when
/// malformed.
long
contentLengthOf(const std::string &head)
{
    std::size_t pos = 0;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos)
            eol = head.size();
        const std::string line = head.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = line.substr(0, colon);
        for (char &c : name)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (name != "content-length")
            continue;
        std::size_t value = colon + 1;
        while (value < line.size() && line[value] == ' ')
            ++value;
        char *end = nullptr;
        const long length =
            std::strtol(line.c_str() + value, &end, 10);
        if (end == line.c_str() + value || length < 0)
            return -2;
        return length;
    }
    return -1;
}

bool
readBody(int fd, long length, std::string *body, std::string *error)
{
    if (length < 0) {
        body->clear();
        if (length == -2)
            *error = "malformed Content-Length";
        return length == -1;
    }
    if (static_cast<std::uint64_t>(length) > kMaxPayloadBytes) {
        *error = "body exceeds payload cap";
        return false;
    }
    body->resize(static_cast<std::size_t>(length));
    if (length > 0 && !readExact(fd, body->data(), body->size())) {
        *error = "truncated http body";
        return false;
    }
    return true;
}

/// Lower-cased Connection header value ("" when absent).
std::string
connectionTokenOf(const std::string &head)
{
    std::size_t pos = 0;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos)
            eol = head.size();
        const std::string line = head.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = line.substr(0, colon);
        for (char &c : name)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (name != "connection")
            continue;
        std::size_t value = colon + 1;
        while (value < line.size() && line[value] == ' ')
            ++value;
        std::string token = line.substr(value);
        while (!token.empty() && token.back() == ' ')
            token.pop_back();
        for (char &c : token)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        return token;
    }
    return "";
}

const char *
statusText(int status)
{
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    }
    return "Unknown";
}

}  // namespace

bool
readExact(int fd, void *buffer, std::size_t length)
{
    char *at = static_cast<char *>(buffer);
    while (length > 0) {
        const ssize_t got = ::recv(fd, at, length, 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (got == 0)
            return false;
        at += got;
        length -= static_cast<std::size_t>(got);
    }
    return true;
}

bool
writeAll(int fd, const void *buffer, std::size_t length)
{
    const char *at = static_cast<const char *>(buffer);
    while (length > 0) {
        const ssize_t sent = ::send(fd, at, length, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        at += sent;
        length -= static_cast<std::size_t>(sent);
    }
    return true;
}

std::string
encodeFrame(const std::string &payload)
{
    const std::uint32_t length =
        static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(payload.size() + 4);
    frame.push_back(static_cast<char>((length >> 24) & 0xff));
    frame.push_back(static_cast<char>((length >> 16) & 0xff));
    frame.push_back(static_cast<char>((length >> 8) & 0xff));
    frame.push_back(static_cast<char>(length & 0xff));
    frame += payload;
    return frame;
}

bool
readFrame(int fd, std::string *payload, std::string *error)
{
    error->clear();
    unsigned char header[4];
    if (!readExact(fd, header, sizeof(header)))
        return false;  // clean EOF between frames
    const std::uint32_t length =
        (static_cast<std::uint32_t>(header[0]) << 24) |
        (static_cast<std::uint32_t>(header[1]) << 16) |
        (static_cast<std::uint32_t>(header[2]) << 8) |
        static_cast<std::uint32_t>(header[3]);
    if (length > kMaxPayloadBytes) {
        *error = "frame of " + std::to_string(length) +
                 " bytes exceeds the payload cap";
        return false;
    }
    payload->resize(length);
    if (length > 0 && !readExact(fd, payload->data(), length)) {
        *error = "truncated frame";
        return false;
    }
    return true;
}

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxPayloadBytes)
        return false;
    const std::string frame = encodeFrame(payload);
    return writeAll(fd, frame.data(), frame.size());
}

bool
readHttpRequest(int fd, HttpRequest *out, std::string *error)
{
    error->clear();
    std::string head;
    if (!readHead(fd, &head, error))
        return false;
    const std::size_t line_end = head.find("\r\n");
    const std::string line = head.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
        *error = "malformed http request line";
        return false;
    }
    out->method = line.substr(0, sp1);
    out->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    // Persistence per RFC 9112: 1.1 defaults alive, 1.0 defaults
    // closed, an explicit Connection token overrides either way.
    const std::string version = line.substr(sp2 + 1);
    const std::string token = connectionTokenOf(head);
    if (token == "close")
        out->keep_alive = false;
    else if (token == "keep-alive")
        out->keep_alive = true;
    else
        out->keep_alive = version != "HTTP/1.0";
    return readBody(fd, contentLengthOf(head), &out->body, error);
}

std::string
httpResponse(int status, const std::string &body, bool keep_alive)
{
    std::string response = "HTTP/1.1 " + std::to_string(status) + " " +
                           statusText(status) + "\r\n";
    response += "Content-Type: application/json\r\n";
    response += "Content-Length: " + std::to_string(body.size()) +
                "\r\n";
    response += keep_alive ? "Connection: keep-alive\r\n\r\n"
                           : "Connection: close\r\n\r\n";
    response += body;
    return response;
}

bool
readHttpResponse(int fd, int *status, std::string *body,
                 std::string *error)
{
    error->clear();
    std::string head;
    if (!readHead(fd, &head, error)) {
        if (error->empty())
            *error = "connection closed before response";
        return false;
    }
    if (head.compare(0, 5, "HTTP/") != 0) {
        *error = "malformed http status line";
        return false;
    }
    const std::size_t sp = head.find(' ');
    if (sp == std::string::npos) {
        *error = "malformed http status line";
        return false;
    }
    *status = std::atoi(head.c_str() + sp + 1);
    return readBody(fd, contentLengthOf(head), body, error);
}

}  // namespace temp::serve
