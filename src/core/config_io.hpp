/**
 * @file
 * Plain-text configuration loading for wafers and models, so downstream
 * users can describe their own hardware and workloads without
 * recompiling. Format: one `key = value` pair per line, `#` comments.
 *
 * Wafer keys (defaults = Table I):
 *   rows, cols, peak_tflops, sram_mb, d2d_tbps, d2d_latency_ns,
 *   d2d_pj_per_bit, hbm_stacks, hbm_gb_per_stack, hbm_tbps_per_stack,
 *   hbm_latency_ns, hbm_pj_per_bit, flops_per_watt_t
 *
 * Model keys:
 *   name, heads, batch, hidden, layers, seq, ffn_mult, vocab
 */
#pragma once

#include <map>
#include <string>

#include "hw/config.hpp"
#include "model/model_zoo.hpp"

namespace temp::core {

/// Parsed key=value pairs (string values, trimmed).
using ConfigMap = std::map<std::string, std::string>;

/// Parses `key = value` lines; `#` starts a comment. fatal() on
/// malformed lines.
ConfigMap parseConfigText(const std::string &text);

/// Loads a ConfigMap from a file; fatal() if unreadable.
ConfigMap loadConfigFile(const std::string &path);

/**
 * Builds a wafer configuration from parsed keys, starting from the
 * Table I defaults; unknown keys are rejected (fatal) so typos do not
 * silently configure the default.
 */
hw::WaferConfig waferFromConfig(const ConfigMap &config);

/// Builds a model configuration from parsed keys; `name` is required
/// unless `base` names a zoo model to start from.
model::ModelConfig modelFromConfig(const ConfigMap &config);

}  // namespace temp::core
