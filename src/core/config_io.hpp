/**
 * @file
 * Plain-text configuration loading for wafers and models, so downstream
 * users can describe their own hardware and workloads without
 * recompiling. Format: one `key = value` pair per line, `#` comments.
 *
 * Wafer keys (defaults = Table I):
 *   rows, cols, peak_tflops, sram_mb, d2d_tbps, d2d_latency_ns,
 *   d2d_pj_per_bit, hbm_stacks, hbm_gb_per_stack, hbm_tbps_per_stack,
 *   hbm_latency_ns, hbm_pj_per_bit, flops_per_watt_t
 *
 * Model keys:
 *   name, heads, batch, hidden, layers, seq, ffn_mult, vocab
 *
 * Framework-options keys (booleans accept 0/1/true/false):
 *   policy (smap | gmap | tcme), eval_threads,
 *   training.flash_attention, training.zero1_optimizer,
 *   training.weight_bytes_per_elem, training.act_bytes_per_elem,
 *   training.grad_bytes_per_elem, training.optimizer_bytes_per_param,
 *   solver.enable_ga, solver.engine (none | genetic | annealing),
 *   solver.ga_population, solver.ga_generations,
 *   solver.ga_mutation_rate, solver.annealing.iterations,
 *   solver.annealing.proposals, solver.annealing.initial_temp,
 *   solver.annealing.cooling, solver.seed, solver.use_surrogate,
 *   solver.surrogate_sample_fraction, solver.space.allow_dp,
 *   solver.space.allow_fsdp, solver.space.allow_tp,
 *   solver.space.allow_sp, solver.space.allow_cp,
 *   solver.space.allow_tatp, solver.space.max_tp,
 *   solver.space.max_tatp, solver.space.full_occupancy
 *
 * Cache-governance keys (entry budgets; 0 = unbounded, the default):
 *   service.cache.max_frameworks, service.cache.max_pods,
 *   eval.cache.max_entries, eval.cache.max_step_entries,
 *   eval.cache.max_layouts, net.schedule_cache.max_entries,
 *   net.route_pool.max_entries
 * Byte budgets (compose with entry budgets; 0 = unbounded):
 *   eval.cache.max_bytes, eval.cache.max_step_bytes,
 *   eval.cache.max_layout_bytes, net.schedule_cache.max_bytes,
 *   net.route_pool.max_bytes
 *
 * Persistent-tier keys (process-local; never part of the framework
 * cache key or the request wire format):
 *   persist.path (snapshot file; empty disables),
 *   persist.save_on_exit (bool), persist.period_s (serve mode)
 *
 * Service front-end keys (process-local like persist.*):
 *   serve.deadline_ms (per-request queue deadline; 0 = off)
 */
#pragma once

#include <map>
#include <stdexcept>
#include <string>

#include "core/framework.hpp"
#include "hw/config.hpp"
#include "model/model_zoo.hpp"

namespace temp::core {

/// Parsed key=value pairs (string values, trimmed).
using ConfigMap = std::map<std::string, std::string>;

/**
 * What the OrThrow config builders raise on malformed input. The
 * classic entry points below translate it into fatal() — the right
 * behavior for a CLI — while long-lived servers (the api request
 * parser) catch it and degrade a bad request to an error response
 * instead of terminating the process.
 */
class ConfigError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/// Parses `key = value` lines; `#` starts a comment. fatal() on
/// malformed lines.
ConfigMap parseConfigText(const std::string &text);

/// Loads a ConfigMap from a file; fatal() if unreadable.
ConfigMap loadConfigFile(const std::string &path);

/**
 * Builds a wafer configuration from parsed keys, starting from the
 * Table I defaults; unknown keys are rejected (fatal) so typos do not
 * silently configure the default.
 */
hw::WaferConfig waferFromConfig(const ConfigMap &config);

/// Builds a model configuration from parsed keys; `name` is required
/// unless `base` names a zoo model to start from.
model::ModelConfig modelFromConfig(const ConfigMap &config);

/**
 * Builds framework options (mapping policy, training options, solver
 * tuning, evaluation threads) from parsed keys, starting from the
 * defaults; unknown keys are rejected (fatal). Together with wafer and
 * model configs this makes a service request fully describable from
 * `.conf` files without recompiling.
 */
FrameworkOptions frameworkOptionsFromConfig(const ConfigMap &config);

/// @{ Error-returning twins of the builders above: identical
/// validation (same messages, same unknown-key strictness), but they
/// throw ConfigError instead of terminating the process. The fatal()
/// versions are thin wrappers over these.
ConfigMap parseConfigTextOrThrow(const std::string &text);
hw::WaferConfig waferFromConfigOrThrow(const ConfigMap &config);
model::ModelConfig modelFromConfigOrThrow(const ConfigMap &config);
FrameworkOptions frameworkOptionsFromConfigOrThrow(
    const ConfigMap &config);
/// @}

/// True when a command-line argument names a config file rather than a
/// zoo model (shared by the CLI and the examples).
bool isConfigFile(const std::string &arg);

}  // namespace temp::core
