#include "core/config_io.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace temp::core {

namespace {

/// printf-style ConfigError: the throwing twin of fatal(), so the
/// OrThrow builders keep byte-identical messages.
[[noreturn]] void
cfgFail(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void
cfgFail(const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    throw ConfigError(buf);
}

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    const auto end = s.find_last_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    return s.substr(begin, end - begin + 1);
}

double
toNumber(const std::string &key, const std::string &value)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const ConfigError &) {
        throw;
    } catch (const std::exception &) {
        cfgFail("config: key '%s' has non-numeric value '%s'",
                key.c_str(), value.c_str());
    }
}

bool
toBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1")
        return true;
    if (value == "false" || value == "0")
        return false;
    cfgFail("config: key '%s' has non-boolean value '%s' "
            "(use 0/1/true/false)",
            key.c_str(), value.c_str());
}

/// A non-negative whole-number config value (cache budgets). Negative
/// values are rejected rather than wrapping into "bounded by 2^64".
long
toCount(const std::string &key, const std::string &value)
{
    const double v = toNumber(key, value);
    if (v < 0)
        cfgFail("config: key '%s' must be >= 0 (0 = unbounded), got '%s'",
                key.c_str(), value.c_str());
    return static_cast<long>(v);
}

/// A uint64 seed. Parsed from the raw decimal lexeme — routing it
/// through toNumber's double would silently corrupt seeds above 2^53.
std::uint64_t
toSeed(const std::string &key, const std::string &value)
{
    if (value.empty() || value.size() > 20)
        cfgFail("config: key '%s' is out of uint64 range ('%s')",
                key.c_str(), value.c_str());
    for (const char c : value)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            cfgFail("config: key '%s' must be a non-negative "
                    "integer, got '%s'",
                    key.c_str(), value.c_str());
    return std::strtoull(value.c_str(), nullptr, 10);
}

tcme::MappingEngineKind
toEngine(const std::string &key, const std::string &value)
{
    if (value == "smap")
        return tcme::MappingEngineKind::SMap;
    if (value == "gmap")
        return tcme::MappingEngineKind::GMap;
    if (value == "tcme")
        return tcme::MappingEngineKind::TCME;
    cfgFail("config: key '%s' has unknown engine '%s' "
            "(use smap/gmap/tcme)",
            key.c_str(), value.c_str());
}

solver::SearchEngineKind
toSearchEngine(const std::string &key, const std::string &value)
{
    solver::SearchEngineKind kind;
    if (!solver::searchEngineFromName(value, &kind))
        cfgFail("config: key '%s' has unknown search engine '%s' "
                "(use none/genetic/annealing/beamtabu/exact/portfolio)",
                key.c_str(), value.c_str());
    return kind;
}

/// Runs a throwing builder, converting ConfigError to fatal() — the
/// CLI-facing behavior of the classic entry points.
template <typename Fn>
auto
fatalOnError(Fn &&fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const ConfigError &error) {
        fatal("%s", error.what());
    }
}

}  // namespace

ConfigMap
parseConfigTextOrThrow(const std::string &text)
{
    ConfigMap config;
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            cfgFail("config line %d: expected 'key = value', got '%s'",
                    line_no, line.c_str());
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty())
            cfgFail("config line %d: empty key or value", line_no);
        config[key] = value;
    }
    return config;
}

ConfigMap
parseConfigText(const std::string &text)
{
    return fatalOnError([&] { return parseConfigTextOrThrow(text); });
}

ConfigMap
loadConfigFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("config: cannot open '%s'", path.c_str());
    std::stringstream buffer;
    buffer << file.rdbuf();
    return parseConfigText(buffer.str());
}

hw::WaferConfig
waferFromConfigOrThrow(const ConfigMap &config)
{
    hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    double hbm_stacks = wafer.hbm.stacks_per_die;
    double hbm_gb = 72.0;
    double hbm_tbps = 1.0;

    for (const auto &[key, value] : config) {
        const double v = toNumber(key, value);
        if (key == "rows") {
            wafer.rows = static_cast<int>(v);
        } else if (key == "cols") {
            wafer.cols = static_cast<int>(v);
        } else if (key == "peak_tflops") {
            wafer.die.peak_flops = tflops(v);
        } else if (key == "sram_mb") {
            wafer.die.sram_bytes = megabytes(v);
        } else if (key == "flops_per_watt_t") {
            wafer.die.flops_per_watt = tflops(v);
        } else if (key == "d2d_tbps") {
            wafer.d2d.bandwidth_bytes_per_s = tbPerSec(v);
        } else if (key == "d2d_latency_ns") {
            wafer.d2d.latency_s = v * kNano;
        } else if (key == "d2d_pj_per_bit") {
            wafer.d2d.energy_pj_per_bit = v;
        } else if (key == "hbm_stacks") {
            hbm_stacks = v;
        } else if (key == "hbm_gb_per_stack") {
            hbm_gb = v;
        } else if (key == "hbm_tbps_per_stack") {
            hbm_tbps = v;
        } else if (key == "hbm_latency_ns") {
            wafer.hbm.latency_s = v * kNano;
        } else if (key == "hbm_pj_per_bit") {
            wafer.hbm.energy_pj_per_bit = v;
        } else {
            cfgFail("config: unknown wafer key '%s'", key.c_str());
        }
    }
    wafer.hbm.stacks_per_die = static_cast<int>(hbm_stacks);
    wafer.hbm.capacity_bytes = hbm_stacks * gigabytes(hbm_gb);
    wafer.hbm.bandwidth_bytes_per_s = hbm_stacks * tbPerSec(hbm_tbps);
    if (wafer.rows < 1 || wafer.cols < 1)
        cfgFail("config: invalid wafer grid %dx%d", wafer.rows,
                wafer.cols);
    return wafer;
}

hw::WaferConfig
waferFromConfig(const ConfigMap &config)
{
    return fatalOnError([&] { return waferFromConfigOrThrow(config); });
}

model::ModelConfig
modelFromConfigOrThrow(const ConfigMap &config)
{
    model::ModelConfig model;
    const auto base = config.find("base");
    const auto name = config.find("name");
    if (base != config.end()) {
        if (!model::tryModelByName(base->second, &model))
            cfgFail("config: unknown base model '%s'",
                    base->second.c_str());
    } else if (name == config.end()) {
        cfgFail("config: model needs 'name' or 'base'");
    }

    for (const auto &[key, value] : config) {
        if (key == "base")
            continue;
        if (key == "name") {
            model.name = value;
            continue;
        }
        const int v = static_cast<int>(toNumber(key, value));
        if (key == "heads")
            model.heads = v;
        else if (key == "batch")
            model.batch = v;
        else if (key == "hidden")
            model.hidden = v;
        else if (key == "layers")
            model.layers = v;
        else if (key == "seq")
            model.seq = v;
        else if (key == "ffn_mult")
            model.ffn_mult = v;
        else if (key == "vocab")
            model.vocab = v;
        else
            cfgFail("config: unknown model key '%s'", key.c_str());
    }
    if (model.heads < 1 || model.hidden < 1)
        cfgFail("config: heads and hidden must be positive");
    if (model.hidden % model.heads != 0)
        cfgFail("config: hidden (%d) must divide by heads (%d)",
                model.hidden, model.heads);
    return model;
}

model::ModelConfig
modelFromConfig(const ConfigMap &config)
{
    return fatalOnError([&] { return modelFromConfigOrThrow(config); });
}

FrameworkOptions
frameworkOptionsFromConfigOrThrow(const ConfigMap &config)
{
    FrameworkOptions options;
    parallel::TrainingOptions &tr = options.training;
    solver::SolverConfig &sv = options.solver;
    solver::StrategySpaceOptions &sp = sv.space;

    for (const auto &[key, value] : config) {
        if (key == "policy") {
            options.policy.kind = toEngine(key, value);
        } else if (key == "eval_threads") {
            options.eval_threads = static_cast<int>(toNumber(key, value));
        } else if (key == "training.flash_attention") {
            tr.flash_attention = toBool(key, value);
        } else if (key == "training.zero1_optimizer") {
            tr.zero1_optimizer = toBool(key, value);
        } else if (key == "training.weight_bytes_per_elem") {
            tr.weight_bytes_per_elem = toNumber(key, value);
        } else if (key == "training.act_bytes_per_elem") {
            tr.act_bytes_per_elem = toNumber(key, value);
        } else if (key == "training.grad_bytes_per_elem") {
            tr.grad_bytes_per_elem = toNumber(key, value);
        } else if (key == "training.optimizer_bytes_per_param") {
            tr.optimizer_bytes_per_param = toNumber(key, value);
        } else if (key == "solver.enable_ga") {
            sv.enable_ga = toBool(key, value);
        } else if (key == "solver.engine") {
            sv.engine = toSearchEngine(key, value);
        } else if (key == "solver.annealing.iterations") {
            sv.annealing.iterations = static_cast<int>(toNumber(key, value));
        } else if (key == "solver.annealing.proposals") {
            sv.annealing.proposals = static_cast<int>(toNumber(key, value));
        } else if (key == "solver.annealing.initial_temp") {
            sv.annealing.initial_temp = toNumber(key, value);
        } else if (key == "solver.annealing.cooling") {
            sv.annealing.cooling = toNumber(key, value);
        } else if (key == "solver.ga_population") {
            sv.ga_population = static_cast<int>(toNumber(key, value));
        } else if (key == "solver.ga_generations") {
            sv.ga_generations = static_cast<int>(toNumber(key, value));
        } else if (key == "solver.ga_mutation_rate") {
            sv.ga_mutation_rate = toNumber(key, value);
        } else if (key == "solver.seed") {
            sv.seed = toSeed(key, value);
        } else if (key == "solver.deadline.quanta") {
            sv.deadline.max_quanta = toCount(key, value);
        } else if (key == "solver.deadline.wall_ms") {
            sv.deadline.max_wall_ms = toNumber(key, value);
        } else if (key == "solver.use_surrogate") {
            sv.use_surrogate = toBool(key, value);
        } else if (key == "solver.surrogate_sample_fraction") {
            sv.surrogate_sample_fraction = toNumber(key, value);
        } else if (key == "solver.space.allow_dp") {
            sp.allow_dp = toBool(key, value);
        } else if (key == "solver.space.allow_fsdp") {
            sp.allow_fsdp = toBool(key, value);
        } else if (key == "solver.space.allow_tp") {
            sp.allow_tp = toBool(key, value);
        } else if (key == "solver.space.allow_sp") {
            sp.allow_sp = toBool(key, value);
        } else if (key == "solver.space.allow_cp") {
            sp.allow_cp = toBool(key, value);
        } else if (key == "solver.space.allow_tatp") {
            sp.allow_tatp = toBool(key, value);
        } else if (key == "solver.space.max_tp") {
            sp.max_tp = static_cast<int>(toNumber(key, value));
        } else if (key == "solver.space.max_tatp") {
            sp.max_tatp = static_cast<int>(toNumber(key, value));
        } else if (key == "solver.space.full_occupancy") {
            sp.full_occupancy = toBool(key, value);
        } else if (key == "service.cache.max_frameworks") {
            options.cache.max_frameworks = toCount(key, value);
        } else if (key == "service.cache.max_pods") {
            options.cache.max_pods = toCount(key, value);
        } else if (key == "eval.cache.max_entries") {
            options.cache.max_eval_entries = toCount(key, value);
        } else if (key == "eval.cache.max_step_entries") {
            options.cache.max_step_entries = toCount(key, value);
        } else if (key == "eval.cache.max_layouts") {
            options.cache.max_layout_entries = toCount(key, value);
        } else if (key == "net.schedule_cache.max_entries") {
            options.cache.max_schedule_entries = toCount(key, value);
        } else if (key == "net.route_pool.max_entries") {
            options.cache.max_route_entries = toCount(key, value);
        } else if (key == "eval.cache.max_bytes") {
            options.cache.max_eval_bytes = toCount(key, value);
        } else if (key == "eval.cache.max_step_bytes") {
            options.cache.max_step_bytes = toCount(key, value);
        } else if (key == "eval.cache.max_layout_bytes") {
            options.cache.max_layout_bytes = toCount(key, value);
        } else if (key == "net.schedule_cache.max_bytes") {
            options.cache.max_schedule_bytes = toCount(key, value);
        } else if (key == "net.route_pool.max_bytes") {
            options.cache.max_route_bytes = toCount(key, value);
        } else if (key == "persist.path") {
            options.persist.path = value;
        } else if (key == "persist.save_on_exit") {
            options.persist.save_on_exit = toBool(key, value);
        } else if (key == "persist.period_s") {
            options.persist.period_s = toNumber(key, value);
        } else if (key == "serve.deadline_ms") {
            options.serve.deadline_ms =
                static_cast<int>(toCount(key, value));
        } else {
            cfgFail("config: unknown options key '%s'", key.c_str());
        }
    }
    return options;
}

FrameworkOptions
frameworkOptionsFromConfig(const ConfigMap &config)
{
    return fatalOnError(
        [&] { return frameworkOptionsFromConfigOrThrow(config); });
}

bool
isConfigFile(const std::string &arg)
{
    return arg.size() > 5 && arg.substr(arg.size() - 5) == ".conf";
}

}  // namespace temp::core
