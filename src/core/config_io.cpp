#include "core/config_io.hpp"

#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace temp::core {

namespace {

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    const auto end = s.find_last_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    return s.substr(begin, end - begin + 1);
}

double
toNumber(const std::string &key, const std::string &value)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("config: key '%s' has non-numeric value '%s'", key.c_str(),
              value.c_str());
    }
}

}  // namespace

ConfigMap
parseConfigText(const std::string &text)
{
    ConfigMap config;
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line %d: expected 'key = value', got '%s'",
                  line_no, line.c_str());
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty())
            fatal("config line %d: empty key or value", line_no);
        config[key] = value;
    }
    return config;
}

ConfigMap
loadConfigFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("config: cannot open '%s'", path.c_str());
    std::stringstream buffer;
    buffer << file.rdbuf();
    return parseConfigText(buffer.str());
}

hw::WaferConfig
waferFromConfig(const ConfigMap &config)
{
    hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    double hbm_stacks = wafer.hbm.stacks_per_die;
    double hbm_gb = 72.0;
    double hbm_tbps = 1.0;

    for (const auto &[key, value] : config) {
        const double v = toNumber(key, value);
        if (key == "rows") {
            wafer.rows = static_cast<int>(v);
        } else if (key == "cols") {
            wafer.cols = static_cast<int>(v);
        } else if (key == "peak_tflops") {
            wafer.die.peak_flops = tflops(v);
        } else if (key == "sram_mb") {
            wafer.die.sram_bytes = megabytes(v);
        } else if (key == "flops_per_watt_t") {
            wafer.die.flops_per_watt = tflops(v);
        } else if (key == "d2d_tbps") {
            wafer.d2d.bandwidth_bytes_per_s = tbPerSec(v);
        } else if (key == "d2d_latency_ns") {
            wafer.d2d.latency_s = v * kNano;
        } else if (key == "d2d_pj_per_bit") {
            wafer.d2d.energy_pj_per_bit = v;
        } else if (key == "hbm_stacks") {
            hbm_stacks = v;
        } else if (key == "hbm_gb_per_stack") {
            hbm_gb = v;
        } else if (key == "hbm_tbps_per_stack") {
            hbm_tbps = v;
        } else if (key == "hbm_latency_ns") {
            wafer.hbm.latency_s = v * kNano;
        } else if (key == "hbm_pj_per_bit") {
            wafer.hbm.energy_pj_per_bit = v;
        } else {
            fatal("config: unknown wafer key '%s'", key.c_str());
        }
    }
    wafer.hbm.stacks_per_die = static_cast<int>(hbm_stacks);
    wafer.hbm.capacity_bytes = hbm_stacks * gigabytes(hbm_gb);
    wafer.hbm.bandwidth_bytes_per_s = hbm_stacks * tbPerSec(hbm_tbps);
    if (wafer.rows < 1 || wafer.cols < 1)
        fatal("config: invalid wafer grid %dx%d", wafer.rows, wafer.cols);
    return wafer;
}

model::ModelConfig
modelFromConfig(const ConfigMap &config)
{
    model::ModelConfig model;
    const auto base = config.find("base");
    const auto name = config.find("name");
    if (base != config.end())
        model = model::modelByName(base->second);
    else if (name == config.end())
        fatal("config: model needs 'name' or 'base'");

    for (const auto &[key, value] : config) {
        if (key == "base")
            continue;
        if (key == "name") {
            model.name = value;
            continue;
        }
        const int v = static_cast<int>(toNumber(key, value));
        if (key == "heads")
            model.heads = v;
        else if (key == "batch")
            model.batch = v;
        else if (key == "hidden")
            model.hidden = v;
        else if (key == "layers")
            model.layers = v;
        else if (key == "seq")
            model.seq = v;
        else if (key == "ffn_mult")
            model.ffn_mult = v;
        else if (key == "vocab")
            model.vocab = v;
        else
            fatal("config: unknown model key '%s'", key.c_str());
    }
    if (model.hidden % model.heads != 0)
        fatal("config: hidden (%d) must divide by heads (%d)",
              model.hidden, model.heads);
    return model;
}

}  // namespace temp::core
