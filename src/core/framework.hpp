/**
 * @file
 * The TEMP framework facade (Fig. 6): architecture parameters, an LLM
 * model and workload in; optimal partition + mapping strategies and
 * performance reports out.
 *
 * Pipeline: TATP-aware strategy space -> TCME mapping (unified
 * representation + traffic-conscious optimisation) -> DLWS (cost model
 * + dual-level search) -> simulated PerfReport. The fault-tolerance
 * path (Sec. VIII-F / Fig. 20a) re-runs the same pipeline against a
 * degraded wafer: fault localisation (FaultMap), tensor re-partitioning
 * (derate-aware cost model) and communication re-routing (fault-aware
 * router + optimizer) fall out of the layered design.
 */
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/strategies.hpp"
#include "common/thread_pool.hpp"
#include "eval/cost_evaluator.hpp"
#include "persist/snapshot.hpp"
#include "sim/multi_wafer.hpp"
#include "sim/trainer_sim.hpp"
#include "solver/dls_solver.hpp"

namespace temp::core {

/**
 * The persistent memo tier's process-local knobs: where to put the
 * snapshot and when to write it. Deliberately NOT part of the
 * framework/request identity (api::optionsKey, request JSON): two
 * processes pointed at different snapshot paths still compute — and
 * must share — identical results.
 */
struct PersistOptions
{
    /// Snapshot file; empty disables the persistent tier.
    std::string path;  ///< persist.path
    /// Write a snapshot when the CLI/serve process exits cleanly
    /// (serve mode also writes on SIGINT drain).
    bool save_on_exit = false;  ///< persist.save_on_exit
    /// Serve mode: seconds between periodic snapshots (0 = only on
    /// exit/drain).
    double period_s = 0.0;  ///< persist.period_s
};

/**
 * Service front-end policy carried through the config surface
 * (`serve.*` keys). Process-local like PersistOptions: how long a
 * process is willing to queue a request changes nothing about what a
 * framework computes, so these stay out of the framework cache key and
 * the request wire format.
 */
struct ServeOptions
{
    /// Per-request queue deadline in milliseconds (0 = off). A request
    /// that waits longer is shed with an explicit deadline_exceeded
    /// response at dequeue time.
    int deadline_ms = 0;  ///< serve.deadline_ms
};

/// Framework-wide options.
struct FrameworkOptions
{
    tcme::MappingPolicy policy{tcme::MappingEngineKind::TCME};
    parallel::TrainingOptions training;
    solver::SolverConfig solver;
    /// Threads for cost evaluation and baseline tuning sweeps
    /// (0 = hardware concurrency). Results are thread-count invariant.
    int eval_threads = 0;
    /**
     * Entry and byte budgets for every memo layer (0 = unbounded, the
     * default). Bounding changes only memory residency — per-op
     * results stay bit-identical because every cached value is a pure
     * function of its key; evicted entries recompute and recount as
     * misses. The service-level fields (max_frameworks/max_pods)
     * govern TempService's own maps, not this framework.
     */
    common::CacheBudget cache;
    /// Snapshot save/load policy (process-local; excluded from the
    /// framework cache key and the request wire format).
    PersistOptions persist;
    /// Service front-end policy (process-local; excluded like persist).
    ServeOptions serve;
};

/**
 * A reusable degraded-wafer solve context: the wafer rebuilt under one
 * fault state plus a full evaluator stack (simulator, caching matrix
 * evaluator, step evaluator) over it. optimizeWithFaults() historically
 * built and discarded this per call; holding one keeps the degraded
 * memos alive, so a repeat solve of the same model on the same fault
 * state reports zero new matrix measurements and zero step sims — the
 * property the scenario engine's revisited-fault-state recovery relies
 * on. Borrows the owning framework's thread pool: keep the framework
 * alive at least as long as the context.
 */
class DegradedContext
{
  public:
    DegradedContext(const hw::WaferConfig &config,
                    const hw::FaultMap &faults,
                    const FrameworkOptions &options, ThreadPool *pool);

    DegradedContext(const DegradedContext &) = delete;
    DegradedContext &operator=(const DegradedContext &) = delete;

    const hw::Wafer &wafer() const { return wafer_; }

    /// Content fingerprint of the fault state this context serves
    /// (hw::FaultMap::contentFingerprint of the construction map).
    std::uint64_t fingerprint() const { return fingerprint_; }

    /**
     * Runs the DLWS pipeline on the degraded wafer, optionally
     * warm-seeded (solver::SolveHints) and deadline-bounded (the
     * budget merges with the configured solver.deadline; checks land
     * on quantum boundaries only). Memos persist across calls.
     */
    solver::SolverResult optimize(
        const model::ModelConfig &model,
        const solver::SolveHints *hints = nullptr,
        const solver::SolveBudget &budget = solver::SolveBudget{});

  private:
    FrameworkOptions options_;
    std::uint64_t fingerprint_;
    hw::Wafer wafer_;
    sim::TrainingSimulator sim_;
    eval::ExactEvaluator exact_;
    eval::CachingEvaluator eval_;
    eval::StepEvaluator steps_;
};

/// The end-to-end TEMP system.
class TempFramework
{
  public:
    explicit TempFramework(hw::WaferConfig wafer_config,
                           FrameworkOptions options = FrameworkOptions());

    /**
     * Runs the full TEMP pipeline on a model: DLWS search over the
     * TATP-extended strategy space, TCME mapping, final simulation.
     */
    solver::SolverResult optimize(const model::ModelConfig &model) const;

    /**
     * Deadline-bounded optimize: solves under the tighter of @p budget
     * and the configured solver.deadline. Budget checks land on
     * quantum boundaries only, so the result is the bit-exact prefix
     * of the unbudgeted solve, flagged via
     * SolverResult::budget_exhausted. The serving layer passes a
     * request's remaining deadline and cancel token here.
     */
    solver::SolverResult optimize(const model::ModelConfig &model,
                                  const solver::SolveBudget &budget) const;

    /**
     * Fault-tolerant re-optimisation: rebuilds the wafer with the given
     * fault state and re-runs the pipeline (the three-step strategy of
     * Fig. 20a).
     */
    solver::SolverResult optimizeWithFaults(const model::ModelConfig &model,
                                            const hw::FaultMap &faults)
        const;

    /// Deadline-bounded variant of optimizeWithFaults().
    solver::SolverResult optimizeWithFaults(
        const model::ModelConfig &model, const hw::FaultMap &faults,
        const solver::SolveBudget &budget) const;

    /**
     * Builds a reusable degraded solve context for a fault state (see
     * DegradedContext). The context borrows this framework's thread
     * pool; keep the framework alive as long as the context.
     */
    std::shared_ptr<DegradedContext> degradedContext(
        const hw::FaultMap &faults) const;

    /// Tunes and evaluates one baseline scheme under a mapping engine.
    baselines::TunedBaseline evaluateBaseline(
        baselines::BaselineKind kind, tcme::MappingEngineKind engine,
        const model::ModelConfig &model) const;

    /// Simulates an explicit uniform strategy under this framework's
    /// mapping policy (ablations, sweeps).
    sim::PerfReport evaluateStrategy(const model::ModelConfig &model,
                                     const parallel::ParallelSpec &spec)
        const;

    const hw::Wafer &wafer() const { return *wafer_; }
    const sim::TrainingSimulator &simulator() const { return *sim_; }
    const FrameworkOptions &options() const { return options_; }

    /**
     * The framework-owned evaluation backend: a caching evaluator over
     * the simulator's cost model, shared by every optimize() call so
     * DP, refiner seeding and repeat optimisations of the same model
     * never re-measure a matrix cell. SolverResult's
     * matrix_measurements / cache_hits report its per-solve deltas.
     */
    eval::CostEvaluator &evaluator() const { return *evaluator_; }

    /**
     * The framework-owned full-step evaluation backend: the memoized,
     * batch-parallel front end over the simulator that the solver's
     * level-2 refinement scores genomes through. Shared by every
     * optimize() call, so a repeat solve re-simulates nothing
     * (SolverResult::step_sims == 0 on the repeat).
     */
    eval::StepEvaluator &stepEvaluator() const { return *steps_; }

    /// Cumulative evaluator counters since construction.
    eval::EvalStats evaluatorStats() const { return evaluator_->stats(); }

    /// Cumulative full-step simulation counters since construction.
    eval::StepStats stepStats() const { return steps_->stats(); }

    /**
     * Governance counters of every memo layer this framework owns,
     * as (layer name, counters) pairs: eval_breakdowns (the shared
     * CachingEvaluator memo), step_reports, layouts (simulator +
     * exact-evaluator layout caches combined), schedules (the shared
     * net::ScheduleCache) and routes (the Router pool). The layer
     * names are the CacheStatsRequest JSON vocabulary.
     */
    std::vector<std::pair<std::string, common::CacheStats>> cacheStats()
        const;

    /**
     * Exports this framework's persistable memo layers — breakdown
     * memo, step-report memo and schedule-cache task signatures — as
     * one snapshot block (framework_key left empty; the service stamps
     * its canonical key). Layout caches are deliberately not exported:
     * layouts are only consulted on breakdown misses, so a warm
     * breakdown/step tier never needs them, and they re-build
     * bit-identically when it does miss.
     */
    persist::MemoBlock exportMemos() const;

    /**
     * Seeds the memo layers from a snapshot block (warm start).
     * Breakdowns and step reports import by value under their content
     * keys; schedule tasks re-lower under the live fault epoch.
     * Resident entries always win, so importing into a warm framework
     * never changes what it serves.
     */
    void importMemos(const persist::MemoBlock &block) const;

  private:
    FrameworkOptions options_;
    std::unique_ptr<hw::Wafer> wafer_;
    std::unique_ptr<sim::TrainingSimulator> sim_;
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<eval::ExactEvaluator> exact_;
    std::unique_ptr<eval::CachingEvaluator> evaluator_;
    std::unique_ptr<eval::StepEvaluator> steps_;
};

}  // namespace temp::core
