#include "core/framework.hpp"

namespace temp::core {

TempFramework::TempFramework(hw::WaferConfig wafer_config,
                             FrameworkOptions options)
    : options_(options),
      wafer_(std::make_unique<hw::Wafer>(wafer_config)),
      sim_(std::make_unique<sim::TrainingSimulator>(*wafer_, options.policy,
                                                    options.training))
{
}

solver::SolverResult
TempFramework::optimize(const model::ModelConfig &model) const
{
    const model::ComputeGraph graph = model::ComputeGraph::transformer(model);
    solver::DlsSolver solver(*sim_, options_.solver);
    return solver.solve(graph);
}

solver::SolverResult
TempFramework::optimizeWithFaults(const model::ModelConfig &model,
                                  const hw::FaultMap &faults) const
{
    // Step 1 of Fig. 20(a): fault localisation = the FaultMap itself.
    hw::Wafer degraded(wafer_->config(), faults);
    // Steps 2-3: re-balance partitioning and re-route communication by
    // re-running the derate-/fault-aware pipeline on the degraded wafer.
    sim::TrainingSimulator degraded_sim(degraded, options_.policy,
                                        options_.training);
    const model::ComputeGraph graph = model::ComputeGraph::transformer(model);
    solver::DlsSolver solver(degraded_sim, options_.solver);
    return solver.solve(graph);
}

baselines::TunedBaseline
TempFramework::evaluateBaseline(baselines::BaselineKind kind,
                                tcme::MappingEngineKind engine,
                                const model::ModelConfig &model) const
{
    parallel::TrainingOptions opts = options_.training;
    if (kind == baselines::BaselineKind::Megatron1)
        opts.zero1_optimizer = false;  // predates the distributed optimizer
    sim::TrainingSimulator engine_sim(*wafer_, tcme::MappingPolicy{engine},
                                      opts);
    baselines::BaselineGenerator generator(engine_sim);
    const model::ComputeGraph graph = model::ComputeGraph::transformer(model);
    return generator.tune(kind, graph);
}

sim::PerfReport
TempFramework::evaluateStrategy(const model::ModelConfig &model,
                                const parallel::ParallelSpec &spec) const
{
    const model::ComputeGraph graph = model::ComputeGraph::transformer(model);
    return sim_->simulate(graph, spec);
}

}  // namespace temp::core
