#include "core/framework.hpp"

namespace temp::core {

TempFramework::TempFramework(hw::WaferConfig wafer_config,
                             FrameworkOptions options)
    : options_(options),
      wafer_(std::make_unique<hw::Wafer>(wafer_config)),
      sim_(std::make_unique<sim::TrainingSimulator>(*wafer_, options.policy,
                                                    options.training)),
      pool_(std::make_unique<ThreadPool>(options.eval_threads)),
      exact_(std::make_unique<eval::ExactEvaluator>(
          sim_->costModel(), pool_.get(), /*memoize_breakdowns=*/false)),
      evaluator_(std::make_unique<eval::CachingEvaluator>(*exact_)),
      steps_(std::make_unique<eval::StepEvaluator>(*sim_, pool_.get()))
{
    // Cache governance: thread the entry and byte budgets through
    // every memo layer this framework owns. All budgets default to 0
    // (unbounded), so the historical behaviour — and the bit-exactness
    // guarantees its tests assert — are untouched unless a budget is
    // configured.
    if (options.cache.boundsFramework()) {
        evaluator_->setMaxEntries(options.cache.max_eval_entries);
        evaluator_->setMaxBytes(options.cache.max_eval_bytes);
        steps_->setMaxEntries(options.cache.max_step_entries);
        steps_->setMaxBytes(options.cache.max_step_bytes);
        exact_->setCacheBudget(options.cache);
        sim_->layoutCache().setMaxEntries(
            options.cache.max_layout_entries);
        sim_->layoutCache().setMaxBytes(options.cache.max_layout_bytes);
        sim_->costModel().setCacheBudgets(options.cache);
    }
}

persist::MemoBlock
TempFramework::exportMemos() const
{
    persist::MemoBlock block;
    evaluator_->forEachCached(
        [&](const std::string &key, const cost::OpCostBreakdown &b) {
            block.breakdowns.emplace_back(key, b);
        });
    steps_->forEachCached(
        [&](const std::string &key, const sim::PerfReport &report) {
            block.step_reports.emplace_back(key, report);
        });
    block.schedule_tasks = sim_->costModel().exportScheduleTasks();
    return block;
}

void
TempFramework::importMemos(const persist::MemoBlock &block) const
{
    for (const auto &[key, breakdown] : block.breakdowns)
        evaluator_->importCached(key, breakdown);
    for (const auto &[key, report] : block.step_reports)
        steps_->importCached(key, report);
    sim_->costModel().prewarmSchedules(block.schedule_tasks);
}

std::vector<std::pair<std::string, common::CacheStats>>
TempFramework::cacheStats() const
{
    common::CacheStats layouts = exact_->layoutCache().cacheStats();
    layouts += sim_->layoutCache().cacheStats();
    return {
        {"eval_breakdowns", evaluator_->cacheStats()},
        {"step_reports", steps_->cacheStats()},
        {"layouts", layouts},
        {"schedules", sim_->costModel().scheduleCacheStats()},
        {"routes", sim_->costModel().routePoolStats()},
    };
}

solver::SolverResult
TempFramework::optimize(const model::ModelConfig &model) const
{
    return optimize(model, solver::SolveBudget{});
}

solver::SolverResult
TempFramework::optimize(const model::ModelConfig &model,
                        const solver::SolveBudget &budget) const
{
    const model::ComputeGraph graph = model::ComputeGraph::transformer(model);
    solver::DlsSolver solver(*sim_, options_.solver, evaluator_.get(),
                             steps_.get());
    return solver.solve(graph, nullptr, budget);
}

DegradedContext::DegradedContext(const hw::WaferConfig &config,
                                 const hw::FaultMap &faults,
                                 const FrameworkOptions &options,
                                 ThreadPool *pool)
    // Step 1 of Fig. 20(a): fault localisation = the FaultMap itself.
    // Steps 2-3 (re-balance partitioning, re-route communication) run
    // in optimize() against this derate-/fault-aware stack. The
    // degraded wafer has its own cost model, so the shared healthy
    // evaluator cannot serve it; this context-local evaluator (sharing
    // the framework pool) keeps the caching + parallel fill — and,
    // unlike the historical per-call locals, keeps its memos across
    // calls.
    : options_(options), fingerprint_(faults.contentFingerprint()),
      wafer_(config, faults),
      sim_(wafer_, options.policy, options.training),
      exact_(sim_.costModel(), pool, /*memoize_breakdowns=*/false),
      eval_(exact_), steps_(sim_, pool)
{
    // Same governance the healthy framework applies in its ctor: a
    // long-lived degraded context must honour the configured budgets.
    if (options.cache.boundsFramework()) {
        eval_.setMaxEntries(options.cache.max_eval_entries);
        eval_.setMaxBytes(options.cache.max_eval_bytes);
        steps_.setMaxEntries(options.cache.max_step_entries);
        steps_.setMaxBytes(options.cache.max_step_bytes);
        exact_.setCacheBudget(options.cache);
        sim_.layoutCache().setMaxEntries(
            options.cache.max_layout_entries);
        sim_.layoutCache().setMaxBytes(options.cache.max_layout_bytes);
        sim_.costModel().setCacheBudgets(options.cache);
    }
}

solver::SolverResult
DegradedContext::optimize(const model::ModelConfig &model,
                          const solver::SolveHints *hints,
                          const solver::SolveBudget &budget)
{
    const model::ComputeGraph graph =
        model::ComputeGraph::transformer(model);
    solver::DlsSolver solver(sim_, options_.solver, &eval_, &steps_);
    return solver.solve(graph, hints, budget);
}

std::shared_ptr<DegradedContext>
TempFramework::degradedContext(const hw::FaultMap &faults) const
{
    return std::make_shared<DegradedContext>(wafer_->config(), faults,
                                             options_, pool_.get());
}

solver::SolverResult
TempFramework::optimizeWithFaults(const model::ModelConfig &model,
                                  const hw::FaultMap &faults) const
{
    return optimizeWithFaults(model, faults, solver::SolveBudget{});
}

solver::SolverResult
TempFramework::optimizeWithFaults(const model::ModelConfig &model,
                                  const hw::FaultMap &faults,
                                  const solver::SolveBudget &budget) const
{
    // The one-shot path: build a context, solve cold, discard — the
    // historical behaviour of FaultRequest. Long-lived callers (the
    // scenario engine) hold the context instead.
    return degradedContext(faults)->optimize(model, nullptr, budget);
}

baselines::TunedBaseline
TempFramework::evaluateBaseline(baselines::BaselineKind kind,
                                tcme::MappingEngineKind engine,
                                const model::ModelConfig &model) const
{
    parallel::TrainingOptions opts = options_.training;
    if (kind == baselines::BaselineKind::Megatron1)
        opts.zero1_optimizer = false;  // predates the distributed optimizer
    sim::TrainingSimulator engine_sim(*wafer_, tcme::MappingPolicy{engine},
                                      opts);
    baselines::BaselineGenerator generator(engine_sim, pool_.get());
    const model::ComputeGraph graph = model::ComputeGraph::transformer(model);
    return generator.tune(kind, graph);
}

sim::PerfReport
TempFramework::evaluateStrategy(const model::ModelConfig &model,
                                const parallel::ParallelSpec &spec) const
{
    const model::ComputeGraph graph = model::ComputeGraph::transformer(model);
    return sim_->simulate(graph, spec);
}

}  // namespace temp::core
