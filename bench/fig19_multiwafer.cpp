/**
 * @file
 * Reproduces Fig. 19: multi-wafer scalability.
 *
 * GPT-3 175B (2 WSCs), Grok-1 341B (4), Llama3 405B (4) and GPT-3 504B
 * (6), with pipeline parallelism across wafers. Baselines lacking
 * wafer-fit parallelism resort to high PP degrees (pp = k x wafers) and
 * pay bubbles; TEMP's TATP keeps PP low (pp = wafers) and wins.
 */
#include "bench_util.hpp"

#include "common/stats.hpp"

#include "sim/multi_wafer.hpp"

using namespace temp;

namespace {

struct Scenario
{
    const char *model;
    int wafers;
};

parallel::ParallelSpec
spec(int dp, int tp, int sp, int tatp, bool csp = false)
{
    parallel::ParallelSpec s;
    s.dp = dp;
    s.tp = tp;
    s.sp = sp;
    s.tatp = tatp;
    s.coupled_sp = csp && tp > 1;
    return s;
}

}  // namespace

int
main()
{
    bench::banner("Fig. 19", "multi-wafer scalability with pipeline PP");

    const Scenario scenarios[] = {{"GPT-3 175B", 2},
                                  {"Grok-1 341B", 4},
                                  {"Llama3 405B", 4},
                                  {"GPT-3 504B", 6}};
    const int microbatches = 16;

    std::vector<double> speedups;
    for (const Scenario &sc : scenarios) {
        const auto cfg = model::modelByName(sc.model);
        const auto graph = model::ComputeGraph::transformer(cfg);
        hw::MultiWaferConfig mw;
        mw.wafer = hw::WaferConfig::paperDefault();
        mw.wafer_count = sc.wafers;

        sim::MultiWaferSimulator tcme_sim(
            mw, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
        sim::MultiWaferSimulator smap_sim(
            mw, tcme::MappingPolicy{tcme::MappingEngineKind::SMap});

        // Baselines: Megatron-style intra-stage parallelism with high PP
        // (pp = 2 x wafers keeps per-stage state on a wafer slice).
        auto pp_of = [&](int k) {
            int pp = sc.wafers * k;
            while (cfg.layers % pp != 0)
                ++pp;  // nudge to a divisor-compatible stage count
            return pp;
        };
        const int pp_high = pp_of(2);
        const int pp_low = pp_of(1);

        struct Sys
        {
            const char *label;
            sim::PerfReport report;
        };
        std::vector<Sys> rows;
        rows.push_back({"Mega+SMap  (high PP)",
                        smap_sim.simulate(graph, spec(2, 8, 1, 1),
                                          pp_high, microbatches)});
        rows.push_back({"MeSP+GMap  (high PP)",
                        smap_sim.simulate(graph, spec(2, 8, 1, 1, true),
                                          pp_high, microbatches)});
        rows.push_back({"FSDP+SMap  (high PP)", [&] {
                            parallel::ParallelSpec s;
                            s.fsdp = 16;
                            return smap_sim.simulate(graph, s, pp_high,
                                                     microbatches);
                        }()});
        rows.push_back({"TEMP (TATP, low PP)",
                        tcme_sim.simulate(graph, spec(2, 1, 1, 16),
                                          pp_low, microbatches)});

        TablePrinter t({"System", "PP", "Norm latency", "Bubble %",
                        "Exposed comm %", "Status"});
        const sim::PerfReport &temp_r = rows.back().report;
        if (!temp_r.feasible || temp_r.oom) {
            std::printf("[%s] TEMP configuration infeasible, skipped\n",
                        sc.model);
            continue;
        }
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto &r = rows[i].report;
            const bool is_temp = i + 1 == rows.size();
            t.addRow({rows[i].label,
                      std::to_string(is_temp ? pp_low : pp_high),
                      r.feasible
                          ? TablePrinter::fmt(r.step_time /
                                              temp_r.step_time)
                          : "inf",
                      r.feasible ? TablePrinter::fmtPct(r.bubble_time /
                                                        r.step_time)
                                 : "-",
                      r.feasible ? TablePrinter::fmtPct(r.exposed_comm /
                                                        r.step_time)
                                 : "-",
                      !r.feasible ? "infeasible"
                                  : (r.oom ? "OOM" : "ok")});
            if (!is_temp && r.feasible && !r.oom)
                speedups.push_back(r.step_time / temp_r.step_time);
        }
        t.print((std::string("Fig. 19 — ") + sc.model + " on " +
                 std::to_string(sc.wafers) + " WSCs")
                    .c_str());
    }

    if (!speedups.empty())
        std::printf("\nTEMP speedup over multi-wafer baselines: %.2fx "
                    "geomean (paper: 1.2x-1.6x)\n",
                    geomean(speedups));
    return 0;
}
