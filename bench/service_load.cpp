/**
 * @file
 * Service front-end load generator: drives a real loopback server
 * (framed RPC through the dispatcher) with a Zipf-distributed request
 * stream and reports the latency distribution, saturation throughput,
 * coalesce rate and shed rate.
 *
 * The stream is duplicate-heavy by construction — a small catalog of
 * distinct optimize requests sampled with Zipf skew from many more
 * client connections than dispatcher workers — so identical requests
 * pile up in flight and the coalescer gets real work: every rider is
 * a solve the service never ran.
 *
 * One BENCH_JSON line with the acceptance bars a CI smoke enforces:
 *
 *  - coalesce_rate > 0.5 on the duplicate-heavy stream (the
 *    coalescer actually collapses the pile-up);
 *  - every request answered: transport_failures == 0 and
 *    answered == requests (shed responses count — shed is an answer,
 *    a dropped connection is not).
 *
 * Exit code is non-zero when a bar fails.
 */
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/request_io.hpp"
#include "api/service.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace temp;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// The solver configuration the api tests use for fast solves: small
/// GA, two evaluation threads — an optimize request lands in the
/// milliseconds, which is long enough for duplicates to overlap.
core::FrameworkOptions
fastOptions()
{
    core::FrameworkOptions options;
    options.solver.ga_population = 8;
    options.solver.ga_generations = 4;
    options.eval_threads = 2;
    return options;
}

double
percentile(std::vector<double> &sorted_ms, double p)
{
    if (sorted_ms.empty())
        return 0.0;
    const double rank =
        p * static_cast<double>(sorted_ms.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

struct ClientTally
{
    std::vector<double> latencies_ms;
    long answered = 0;
    long shed = 0;
    long transport_failures = 0;
};

}  // namespace

int
main(int argc, char **argv)
{
    int clients = 16;
    int per_client = 25;
    int workers = 2;
    int catalog_size = 6;
    double alpha = 1.1;
    for (int i = 1; i < argc; ++i) {
        auto value = [&]() { return std::atof(argv[++i]); };
        if (std::strcmp(argv[i], "--clients") == 0)
            clients = static_cast<int>(value());
        else if (std::strcmp(argv[i], "--requests") == 0)
            per_client = static_cast<int>(value());
        else if (std::strcmp(argv[i], "--workers") == 0)
            workers = static_cast<int>(value());
        else if (std::strcmp(argv[i], "--catalog") == 0)
            catalog_size = static_cast<int>(value());
        else if (std::strcmp(argv[i], "--alpha") == 0)
            alpha = value();
    }

    bench::banner("service front end",
                  "Zipf load, latency and coalescing");

    // Catalog of distinct optimize requests (solver seed varies the
    // canonical key; everything else is shared so the framework cache
    // serves all of them).
    std::vector<api::Request> catalog;
    for (int i = 0; i < catalog_size; ++i) {
        api::OptimizeRequest request;
        request.model = model::modelByName("GPT-3 6.7B");
        request.options = fastOptions();
        request.options.solver.seed = 1000 + i;
        catalog.push_back(request);
    }
    // Zipf CDF over the catalog: mass ~ 1/(rank+1)^alpha.
    std::vector<double> cdf;
    double mass = 0.0;
    for (int i = 0; i < catalog_size; ++i) {
        mass += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf.push_back(mass);
    }
    for (double &c : cdf)
        c /= mass;

    api::TempService service;
    serve::ServerOptions options;
    options.dispatcher.workers = workers;
    serve::Server server(service, options);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "service_load: %s\n", error.c_str());
        return 1;
    }

    std::vector<ClientTally> tallies(
        static_cast<std::size_t>(clients));
    const double t0 = now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            ClientTally &tally =
                tallies[static_cast<std::size_t>(c)];
            serve::Client client;
            std::string client_error;
            if (!client.connect("127.0.0.1", server.port(),
                                &client_error)) {
                tally.transport_failures = per_client;
                return;
            }
            Rng rng(static_cast<std::uint64_t>(7 + c));
            for (int n = 0; n < per_client; ++n) {
                const double u = rng.uniformReal(0.0, 1.0);
                const std::size_t pick = static_cast<std::size_t>(
                    std::lower_bound(cdf.begin(), cdf.end(), u) -
                    cdf.begin());
                std::string response_json;
                const double sent = now();
                if (!client.call(catalog[std::min(
                                     pick, catalog.size() - 1)],
                                 "load", &response_json,
                                 &client_error)) {
                    ++tally.transport_failures;
                    break;  // connection is gone; stop this client
                }
                tally.latencies_ms.push_back((now() - sent) * 1e3);
                ++tally.answered;
                common::JsonValue response;
                std::string parse_error;
                if (common::parseJson(response_json, &response,
                                      &parse_error)) {
                    const common::JsonValue *shed =
                        response.find("shed");
                    if (shed != nullptr && shed->isBool() &&
                        shed->bool_value)
                        ++tally.shed;
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    const double wall_s = now() - t0;

    server.stop();
    const serve::DispatchStats stats = server.stats();

    std::vector<double> latencies;
    long answered = 0;
    long shed = 0;
    long transport_failures = 0;
    for (const ClientTally &tally : tallies) {
        latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                         tally.latencies_ms.end());
        answered += tally.answered;
        shed += tally.shed;
        transport_failures += tally.transport_failures;
    }
    std::sort(latencies.begin(), latencies.end());
    const long requests =
        static_cast<long>(clients) * static_cast<long>(per_client);
    const double p50 = percentile(latencies, 0.50);
    const double p95 = percentile(latencies, 0.95);
    const double p99 = percentile(latencies, 0.99);
    const double throughput =
        wall_s > 0.0 ? static_cast<double>(answered) / wall_s : 0.0;
    const double coalesce_rate =
        stats.accepted > 0 ? static_cast<double>(stats.coalesced) /
                                 static_cast<double>(stats.accepted)
                           : 0.0;
    const double shed_rate =
        stats.accepted > 0 ? static_cast<double>(stats.shed) /
                                 static_cast<double>(stats.accepted)
                           : 0.0;

    std::printf("Load: %d clients x %d requests over %d-entry "
                "catalog (Zipf %.2f), %d workers\n",
                clients, per_client, catalog_size, alpha, workers);
    std::printf("  answered          %ld of %ld (%ld shed, %ld "
                "transport failures)\n",
                answered, requests, shed, transport_failures);
    std::printf("  latency           p50 %.1f ms, p95 %.1f ms, "
                "p99 %.1f ms\n",
                p50, p95, p99);
    std::printf("  throughput        %.1f req/s\n", throughput);
    std::printf("  coalescing        %ld of %ld accepted (%.0f%%), "
                "%ld solves executed\n",
                stats.coalesced, stats.accepted, coalesce_rate * 100,
                stats.executed);

    std::printf("BENCH_JSON {\"bench\":\"service_load\","
                "\"clients\":%d,\"per_client\":%d,\"workers\":%d,"
                "\"catalog\":%d,\"alpha\":%.2f,\"requests\":%ld,"
                "\"answered\":%ld,\"shed\":%ld,"
                "\"transport_failures\":%ld,\"accepted\":%ld,"
                "\"coalesced\":%ld,\"executed\":%ld,"
                "\"coalesce_rate\":%.3f,\"shed_rate\":%.3f,"
                "\"p50_ms\":%.2f,\"p95_ms\":%.2f,\"p99_ms\":%.2f,"
                "\"throughput_rps\":%.1f,\"wall_s\":%.2f}\n",
                clients, per_client, workers, catalog_size, alpha,
                requests, answered, shed, transport_failures,
                stats.accepted, stats.coalesced, stats.executed,
                coalesce_rate, shed_rate, p50, p95, p99, throughput,
                wall_s);

    // Acceptance bars (CI smoke).
    bool ok = true;
    if (coalesce_rate <= 0.5) {
        std::fprintf(stderr,
                     "FAIL: coalesce rate %.3f <= 0.5 on a "
                     "duplicate-heavy stream\n",
                     coalesce_rate);
        ok = false;
    }
    if (transport_failures != 0 || answered != requests) {
        std::fprintf(stderr,
                     "FAIL: %ld of %ld requests unanswered "
                     "(%ld transport failures)\n",
                     requests - answered, requests,
                     transport_failures);
        ok = false;
    }
    return ok ? 0 : 1;
}
