/**
 * @file
 * Reproduces Fig. 20(b,c): fault tolerance of the TEMP pipeline.
 *
 * (b) Normalised throughput vs link fault rate: resilient while routing
 *     diversity lasts, then a cliff once the mesh effectively partitions
 *     (the paper observes the cliff around a 35% fault rate).
 * (c) Normalised throughput vs core fault rate: graceful degradation —
 *     the framework re-balances partitions around slow dies.
 */
#include "bench_util.hpp"

#include "core/framework.hpp"

using namespace temp;

int
main()
{
    bench::banner("Fig. 20", "fault tolerance (link and core faults)");

    core::TempFramework fw(hw::WaferConfig::paperDefault());
    const auto model = model::modelByName("Llama2 7B");
    const auto healthy = fw.optimize(model);
    if (!healthy.feasible) {
        std::printf("healthy optimisation failed\n");
        return 1;
    }
    const double base_tput = healthy.report.throughput_tokens_per_s;
    hw::Wafer probe(hw::WaferConfig::paperDefault());

    TablePrinter links({"Link fault rate", "Norm throughput",
                        "Infeasible draws", "Status"});
    for (double rate : {0.0, 0.05, 0.10, 0.20, 0.35, 0.50, 0.80}) {
        // Average over a few fault draws for a stable curve.
        double acc = 0.0;
        int ok = 0;
        const int draws = 3;
        for (int d = 0; d < draws; ++d) {
            Rng rng(100 + d);
            const auto faults = hw::FaultMap::randomLinkFaults(
                probe.topology(), rate, rng);
            const auto r = fw.optimizeWithFaults(model, faults);
            if (r.feasible && r.report.throughput_tokens_per_s > 0.0) {
                acc += r.report.throughput_tokens_per_s;
                ++ok;
            }
        }
        // Mean over the feasible draws only; infeasible draws get
        // their own column instead of being folded into the mean as
        // zeros (which silently conflated "slow" with "partitioned").
        const double tput = ok > 0 ? acc / ok : 0.0;
        links.addRow({TablePrinter::fmtPct(rate, 0),
                      TablePrinter::fmt(tput / base_tput),
                      std::to_string(draws - ok) + "/" +
                          std::to_string(draws),
                      ok == draws ? "ok"
                                  : (ok == 0 ? "partitioned"
                                             : "partially partitioned")});
    }
    links.print("(b) throughput vs link fault rate");

    TablePrinter cores({"Core fault rate", "Norm throughput"});
    for (double rate : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25}) {
        Rng rng(200);
        const auto faults = hw::FaultMap::randomCoreFaults(
            probe.topology(), rate, rng);
        const auto r = fw.optimizeWithFaults(model, faults);
        cores.addRow({TablePrinter::fmtPct(rate, 0),
                      r.feasible
                          ? TablePrinter::fmt(
                                r.report.throughput_tokens_per_s /
                                base_tput)
                          : "0"});
    }
    cores.print("(c) throughput vs core fault rate");
    std::printf("\nExpected shapes: link faults hit a cliff once the mesh "
                "partitions; core faults degrade gracefully (~80%% "
                "throughput at 25%% faults in the paper).\n");
    return 0;
}
