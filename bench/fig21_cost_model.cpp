/**
 * @file
 * Reproduces Fig. 21: DNN-based cost-model fidelity.
 *
 * 500 randomly parameterised cases per category (computation,
 * communication, computation/communication overlap), ground truth from
 * the analytic simulator; the MLP surrogate is compared against a
 * multivariate linear-regression baseline on correlation and error.
 */
#include "bench_util.hpp"

#include <chrono>

#include "cost/surrogate.hpp"

using namespace temp;

int
main()
{
    bench::banner("Fig. 21", "cost-model fidelity: DNN vs regression");

    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    cost::CostDatasetGenerator gen(wafer);

    TablePrinter t({"Latency class", "Model", "Correlation", "Error",
                    "Paper (corr/err)"});
    const char *paper[] = {"0.997 / 4.38%", "0.988 / 4.37%",
                           "0.988 / 4.57%"};
    const char *paper_base[] = {"0.991 / 13.13%", "0.994 / 12.68%",
                                "0.990 / 15.21%"};

    int idx = 0;
    double lookup_us = 0.0;
    for (cost::CostTargetKind kind :
         {cost::CostTargetKind::Computation,
          cost::CostTargetKind::Communication,
          cost::CostTargetKind::Overlap}) {
        Rng rng(42 + idx);
        const auto train = gen.generate(kind, 500, rng);
        const auto test = gen.generate(kind, 150, rng);

        cost::DnnCostModel dnn(7 + idx);
        dnn.epochs = 2500;
        dnn.fit(train);
        cost::LinearCostModel linear;
        linear.fit(train);

        const auto dnn_report = cost::evaluatePredictor(dnn, test);
        const auto lin_report = cost::evaluatePredictor(linear, test);

        t.addRow({cost::costTargetName(kind), "DNN (ours)",
                  TablePrinter::fmt(dnn_report.correlation),
                  TablePrinter::fmt(dnn_report.mape, 2) + "%",
                  paper[idx]});
        t.addRow({cost::costTargetName(kind), "linear regression",
                  TablePrinter::fmt(lin_report.correlation),
                  TablePrinter::fmt(lin_report.mape, 2) + "%",
                  paper_base[idx]});

        // Lookup latency of the trained surrogate.
        const auto t0 = std::chrono::steady_clock::now();
        double sink = 0.0;
        for (const auto &s : test)
            sink += dnn.predict(s.features);
        const auto t1 = std::chrono::steady_clock::now();
        lookup_us += std::chrono::duration<double, std::micro>(t1 - t0)
                         .count() /
                     test.size();
        (void)sink;
        ++idx;
    }
    t.print("Surrogate fidelity on held-out cases");
    std::printf("\nAverage surrogate lookup: %.1f us per query (paper: "
                "a few hundred us vs minutes-to-hours of simulation -> "
                "100-1000x faster search)\n",
                lookup_us / 3.0);
    return 0;
}
