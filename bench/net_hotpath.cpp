/**
 * @file
 * Network hot-path microbench: the layer every (op, strategy) cost
 * query bottoms out in.
 *
 * Three measurements, each emitted as a BENCH_JSON line:
 *
 *  - lowering_shape: schedules/sec of flat-arena lowering vs. the same
 *    lowering copied out into the former vector<vector<Flow>> nested
 *    shape (what every schedule build used to allocate);
 *  - schedule_cache: schedules/sec of cold lowering vs. cache-served
 *    re-lowering of the same task mix (the acceptance bar: >= 2x);
 *  - quickstart_solve: the schedule-cache hit rate of a real cold DLS
 *    solve on the quickstart model (the acceptance bar: > 50%);
 *  - bounded_cache: the same task mix against a schedule cache
 *    budgeted to 1/4 of the working set, driven with a service-like
 *    skewed access pattern (a hot quarter plus a cold scan). The
 *    acceptance bars: the LRU keeps the hot set resident (bounded
 *    hit rate >= 25% — graceful degradation, not a cliff), entries
 *    never exceed the budget, and bounded timings stay bit-identical
 *    to unbounded ones.
 *
 * Exit code is non-zero when any acceptance bar fails, so a CI
 * Release build can run this binary as a smoke test and catch perf
 * plumbing rot (a cache that silently stops hitting).
 */
#include "bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <vector>

#include "api/service.hpp"
#include "hw/wafer.hpp"
#include "model/model_zoo.hpp"
#include "net/collective.hpp"
#include "net/schedule_cache.hpp"
#include "parallel/layout.hpp"

using namespace temp;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// A quickstart-like task mix: ring collectives and P2Ps over snake
/// sub-groups of the paper-default 4x8 wafer, sized like the per-axis
/// groups the matrix fill lowers.
std::vector<net::CollectiveTask>
taskMix(const hw::Wafer &wafer)
{
    const auto snake =
        parallel::GroupLayout::snakeOrder(wafer.topology());
    std::vector<net::CollectiveTask> tasks;
    const net::CollectiveKind kinds[] = {net::CollectiveKind::AllReduce,
                                         net::CollectiveKind::AllGather,
                                         net::CollectiveKind::ReduceScatter};
    int tag = 1000;
    for (int size : {2, 4, 8, 16, 32}) {
        for (int start = 0; start + size <= wafer.dieCount();
             start += size) {
            for (const net::CollectiveKind kind : kinds) {
                net::CollectiveTask task;
                task.kind = kind;
                task.group.assign(snake.begin() + start,
                                  snake.begin() + start + size);
                task.bytes = 1e6 * size;
                task.tag = tag++ % 1006;
                tasks.push_back(std::move(task));
            }
        }
    }
    for (int i = 0; i + 1 < wafer.dieCount(); i += 7) {
        net::CollectiveTask task;
        task.kind = net::CollectiveKind::P2P;
        task.group = {snake[i], snake[i + 1]};
        task.bytes = 4e6;
        tasks.push_back(std::move(task));
    }
    return tasks;
}

}  // namespace

int
main()
{
    bench::banner("Network hot path",
                  "flat-arena lowering, schedule cache, contention");

    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    net::Router router(wafer.topology(), &wafer.faults());
    net::CollectiveScheduler scheduler(router);
    const std::vector<net::CollectiveTask> tasks = taskMix(wafer);
    const int reps = 40;

    // --- flat-arena lowering vs the former nested shape ---------------
    double flat_s = 0.0;
    double nested_s = 0.0;
    {
        const double t0 = now();
        std::size_t flows = 0;
        for (int rep = 0; rep < reps; ++rep)
            for (const net::CollectiveTask &task : tasks)
                flows += scheduler.schedule(task).flowCount();
        flat_s = now() - t0;

        const double t1 = now();
        std::size_t nested_flows = 0;
        for (int rep = 0; rep < reps; ++rep) {
            for (const net::CollectiveTask &task : tasks) {
                const net::CommSchedule s = scheduler.schedule(task);
                // The pre-arena shape: one vector per round.
                std::vector<std::vector<net::Flow>> rounds(
                    s.roundCount());
                for (int r = 0; r < s.roundCount(); ++r)
                    rounds[r].assign(s.round(r).begin(),
                                     s.round(r).end());
                nested_flows += rounds.empty() ? 0 : rounds[0].size();
            }
        }
        nested_s = now() - t1;
        (void)flows;
        (void)nested_flows;
    }
    const double lowered = static_cast<double>(tasks.size()) * reps;
    std::printf("Lowering: flat %.0f sched/s, nested-shape %.0f sched/s "
                "(x%.2f)\n",
                lowered / flat_s, lowered / nested_s,
                flat_s > 0.0 ? nested_s / flat_s : 0.0);
    std::printf("BENCH_JSON {\"bench\":\"net_hotpath\","
                "\"section\":\"lowering_shape\",\"tasks\":%zu,"
                "\"reps\":%d,\"flat_schedules_per_s\":%.1f,"
                "\"nested_schedules_per_s\":%.1f}\n",
                tasks.size(), reps, lowered / flat_s,
                lowered / nested_s);

    // --- cold lowering vs cache-served re-lowering ---------------------
    net::ScheduleCache cache(scheduler);
    const double t2 = now();
    for (const net::CollectiveTask &task : tasks)
        cache.lowered(task, wafer.faultEpoch());
    const double cold_s = now() - t2;

    const double t3 = now();
    for (int rep = 0; rep < reps; ++rep)
        for (const net::CollectiveTask &task : tasks)
            cache.lowered(task, wafer.faultEpoch());
    const double warm_s = (now() - t3) / reps;

    const double cold_rate = static_cast<double>(tasks.size()) / cold_s;
    const double warm_rate =
        warm_s > 0.0 ? static_cast<double>(tasks.size()) / warm_s : 0.0;
    const double speedup = warm_rate > 0.0 ? warm_rate / cold_rate : 0.0;
    const net::ScheduleCacheStats cache_stats = cache.stats();
    std::printf("Schedule cache: cold %.0f sched/s, cached %.0f sched/s "
                "(x%.1f), %ld lowerings / %ld hits\n",
                cold_rate, warm_rate, speedup, cache_stats.lowerings,
                cache_stats.hits);
    std::printf("BENCH_JSON {\"bench\":\"net_hotpath\","
                "\"section\":\"schedule_cache\",\"tasks\":%zu,"
                "\"cold_schedules_per_s\":%.1f,"
                "\"cached_schedules_per_s\":%.1f,"
                "\"cached_speedup\":%.2f,\"lowerings\":%ld,"
                "\"hits\":%ld}\n",
                tasks.size(), cold_rate, warm_rate, speedup,
                cache_stats.lowerings, cache_stats.hits);

    // --- schedule-cache hit rate of a real cold solve -------------------
    api::TempService service;
    const api::Response solve =
        service.run(api::OptimizeRequest{model::modelByName("GPT-3 6.7B")});
    const double solve_hit_rate =
        net::ScheduleCacheStats{solve.solver.schedule_lowerings,
                                solve.solver.schedule_cache_hits}
            .hitRate();
    std::printf("Quickstart cold solve: %ld lowerings / %ld hits "
                "(hit rate %.3f)\n",
                solve.solver.schedule_lowerings,
                solve.solver.schedule_cache_hits, solve_hit_rate);
    std::printf("BENCH_JSON {\"bench\":\"net_hotpath\","
                "\"section\":\"quickstart_solve\",\"model\":\"GPT-3 "
                "6.7B\",\"schedule_lowerings\":%ld,"
                "\"schedule_cache_hits\":%ld,\"hit_rate\":%.4f,"
                "\"feasible\":%s}\n",
                solve.solver.schedule_lowerings,
                solve.solver.schedule_cache_hits, solve_hit_rate,
                solve.solver.feasible ? "true" : "false");

    // --- bounded mode: 1/4-size budget, skewed access ------------------
    // A long-lived service cannot keep every signature resident; the
    // budget must degrade hit rate gracefully (LRU keeps the hot set),
    // never results. Access pattern: a cold scan of the whole mix
    // interleaved with a hot slice half the budget's size — the skew
    // real request streams have. LRU keeps the hot slice resident
    // (every hot task recurs within a budget's worth of accesses), so
    // roughly half the lookups keep hitting; a recency-blind eviction
    // policy would cliff to ~0 on this pattern.
    net::ScheduleCache bounded(scheduler);
    const std::size_t budget = std::max<std::size_t>(2, tasks.size() / 4);
    bounded.setMaxEntries(budget);
    const std::size_t hot = budget / 2;
    std::size_t over_budget = 0;
    double mismatches = 0.0;
    const double t4 = now();
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            const auto b =
                bounded.lowered(tasks[i], wafer.faultEpoch());
            // The interleaved hot-slice touch (the skew).
            (void)bounded.lowered(tasks[i % hot], wafer.faultEpoch());
            if (bounded.size() > budget)
                ++over_budget;
            // Bit-exactness spot check against the unbounded cache.
            const auto u = cache.lowered(tasks[i], wafer.faultEpoch());
            if (b->linkBytes() != u->linkBytes() ||
                b->flowCount() != u->flowCount())
                mismatches += 1.0;
        }
    }
    const double bounded_s = now() - t4;
    const net::ScheduleCacheStats bounded_stats = bounded.stats();
    const double bounded_hit_rate = bounded_stats.hitRate();
    const common::CacheStats bounded_gov = bounded.cacheStats();
    std::printf("Bounded cache (budget %zu of %zu tasks): hit rate %.3f, "
                "%ld evictions, %zu over-budget probes, %.1fs\n",
                budget, tasks.size(), bounded_hit_rate,
                bounded_gov.evictions, over_budget, bounded_s);
    std::printf("BENCH_JSON {\"bench\":\"net_hotpath\","
                "\"section\":\"bounded_cache\",\"tasks\":%zu,"
                "\"budget\":%zu,\"hit_rate\":%.4f,\"evictions\":%ld,"
                "\"entries\":%ld,\"over_budget_probes\":%zu,"
                "\"timing_mismatches\":%.0f}\n",
                tasks.size(), budget, bounded_hit_rate,
                bounded_gov.evictions, bounded_gov.entries, over_budget,
                mismatches);

    // --- acceptance bars (CI smoke) -------------------------------------
    bool ok = true;
    if (speedup < 2.0) {
        std::printf("FAIL: cached re-lowering %.2fx < 2x cold\n", speedup);
        ok = false;
    }
    if (solve.solver.schedule_cache_hits <= 0 || solve_hit_rate <= 0.5) {
        std::printf("FAIL: cold-solve schedule cache hit rate %.3f "
                    "(want > 0.5 with nonzero hits)\n",
                    solve_hit_rate);
        ok = false;
    }
    if (bounded_hit_rate < 0.25) {
        std::printf("FAIL: bounded (1/4 budget) hit rate %.3f < 0.25 — "
                    "eviction is cliffing instead of degrading\n",
                    bounded_hit_rate);
        ok = false;
    }
    if (over_budget > 0 || bounded_gov.evictions <= 0) {
        std::printf("FAIL: budget not enforced (%zu over-budget probes, "
                    "%ld evictions)\n",
                    over_budget, bounded_gov.evictions);
        ok = false;
    }
    if (mismatches > 0.0) {
        std::printf("FAIL: %.0f bounded lowerings differed from "
                    "unbounded\n",
                    mismatches);
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("net_hotpath acceptance bars passed\n");
    return 0;
}
