/**
 * @file
 * Reproduces Fig. 17: mixed-parallelism sweep for Llama2 7B on 32 dies
 * under TCME, for (a) seq 2k / batch 128 and (b) seq 16k / batch 32.
 * Tuples follow the paper's (DP, TP, SP, TATP) notation.
 */
#include "bench_util.hpp"

#include "sim/trainer_sim.hpp"
#include "solver/strategy_space.hpp"

using namespace temp;

namespace {

void
sweep(const model::ModelConfig &cfg, const char *title)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    sim::TrainingSimulator sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const auto graph = model::ComputeGraph::transformer(cfg);

    solver::StrategySpaceOptions space;
    const auto specs = solver::enumerateStrategies(32, cfg, space);

    struct Entry
    {
        parallel::ParallelSpec spec;
        sim::PerfReport report;
    };
    std::vector<Entry> entries;
    double best_tput = 0.0, best_no_tatp = 0.0, best_mega_like = 0.0;
    for (const auto &spec : specs) {
        const auto r = sim.simulate(graph, spec);
        if (!r.feasible)
            continue;
        entries.push_back({spec, r});
        if (!r.oom) {
            best_tput = std::max(best_tput, r.throughput_tokens_per_s);
            if (spec.tatp == 1)
                best_no_tatp =
                    std::max(best_no_tatp, r.throughput_tokens_per_s);
            if (spec.tatp == 1 && spec.sp == 1)
                best_mega_like =
                    std::max(best_mega_like, r.throughput_tokens_per_s);
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.report.throughput_tokens_per_s >
                         b.report.throughput_tokens_per_s;
              });

    TablePrinter t({"(DP,TP,SP,TATP)", "Norm throughput", "Mem (GB)",
                    "Exposed comm %", "Status"});
    int shown = 0;
    for (const Entry &e : entries) {
        if (shown++ >= 12)
            break;
        char tuple[48];
        std::snprintf(tuple, sizeof(tuple), "(%d,%d,%d,%d)%s", e.spec.dp,
                      e.spec.tp, e.spec.sp, e.spec.tatp,
                      e.spec.cp > 1 ? "+cp" : "");
        t.addRow({tuple,
                  TablePrinter::fmt(e.report.throughput_tokens_per_s /
                                    best_tput),
                  TablePrinter::fmt(e.report.peak_mem_bytes / 1e9, 1),
                  TablePrinter::fmtPct(e.report.exposed_comm /
                                       e.report.step_time),
                  e.report.oom ? "OOM" : "ok"});
    }
    t.print(title);
    if (best_mega_like > 0.0)
        std::printf("Best-with-TATP over best-Megatron-style: %.2fx\n",
                    best_tput / best_mega_like);
    if (best_no_tatp > 0.0)
        std::printf("Best-with-TATP over best-without-TATP:   %.2fx\n",
                    best_tput / best_no_tatp);
}

}  // namespace

int
main()
{
    bench::banner("Fig. 17", "mixed-parallelism strategies, Llama2 7B");
    const auto base = model::modelByName("Llama2 7B");
    sweep(base.withSeqBatch(2048, 128),
          "(a) batch=128, seq=2k — top strategies");
    sweep(base.withSeqBatch(16384, 32),
          "(b) batch=32, seq=16k — top strategies");
    return 0;
}
