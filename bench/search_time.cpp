/**
 * @file
 * Reproduces the Sec. VIII-H search-time comparison: the dual-level
 * search (graph partition + DP + GA) vs the exhaustive branch-and-bound
 * baseline standing in for the ILP of [144] (Alpa), which the paper
 * reports at ~40 hours for GPT-3 76B on 64 dies vs ~3 minutes for DLS
 * (>200x).
 */
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "api/service.hpp"
#include "cost/breakdown_reduce.hpp"
#include "eval/cost_evaluator.hpp"
#include "net/schedule_cache.hpp"
#include "sim/trainer_sim.hpp"
#include "solver/dls_solver.hpp"
#include "solver/portfolio.hpp"
#include "solver/strategy_space.hpp"

using namespace temp;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * The evaluation-layer micro-bench: fills the full (op, candidate)
 * matrix cold (all measurements) and then warm (all cache hits) at
 * several thread counts, and runs the DLS search with the same pool
 * width. Emits one BENCH_JSON line per thread count so trajectories
 * can track evaluations/sec and hit-rate across commits.
 */
void
evaluatorThroughput(const sim::TrainingSimulator &sim,
                    const model::ComputeGraph &graph)
{
    std::vector<parallel::ParallelSpec> candidates =
        solver::enumerateStrategies(sim.wafer().dieCount(),
                                    graph.config(), {});
    std::vector<eval::EvalRequest> requests;
    for (int i = 0; i < graph.opCount(); ++i)
        for (const parallel::ParallelSpec &spec : candidates)
            requests.push_back({i, spec, true});

    const int hw_threads = std::max(
        4u, std::thread::hardware_concurrency());
    TablePrinter t({"Threads", "Cold fill (s)", "Evals/s (cold)",
                    "Warm refill (s)", "Warm hit rate", "DLS solve (s)",
                    "Speedup vs 1T"});
    double base_cold = 0.0;
    for (int threads : {1, 2, hw_threads}) {
        ThreadPool pool(threads);
        eval::ExactEvaluator evaluator(sim.costModel(), &pool);

        const double t0 = now();
        evaluator.evaluateBatch(graph, requests);
        const double cold = now() - t0;
        const eval::EvalStats after_cold = evaluator.stats();
        const double t1 = now();
        evaluator.evaluateBatch(graph, requests);
        const double warm = now() - t1;

        // Hit rate of the warm pass alone (expected 1.0; anything less
        // is a cache regression), not the cumulative cold+warm ratio,
        // which is 0.5 by construction.
        const eval::EvalStats warm_stats =
            evaluator.stats() - after_cold;
        const double hit_rate =
            static_cast<double>(warm_stats.cache_hits) /
            static_cast<double>(warm_stats.cache_hits +
                                warm_stats.measurements);
        const double evals_per_s =
            cold > 0.0 ? static_cast<double>(requests.size()) / cold
                       : 0.0;

        solver::SolverConfig cfg;
        cfg.eval_threads = threads;
        const double t2 = now();
        const solver::SolverResult solved =
            solver::DlsSolver(sim, cfg).solve(graph);
        const double solve = now() - t2;

        if (threads == 1)
            base_cold = cold;
        t.addRow({std::to_string(threads), TablePrinter::fmt(cold, 3),
                  TablePrinter::fmt(evals_per_s, 0),
                  TablePrinter::fmt(warm, 4),
                  TablePrinter::fmt(hit_rate, 3),
                  TablePrinter::fmt(solve, 2),
                  TablePrinter::fmtX(
                      base_cold > 0.0 && cold > 0.0 ? base_cold / cold
                                                    : 0.0,
                      2)});
        std::printf("BENCH_JSON {\"bench\":\"search_time\","
                    "\"section\":\"evaluator_throughput\","
                    "\"model\":\"%s\",\"threads\":%d,"
                    "\"matrix_cells\":%zu,\"cold_fill_s\":%.6f,"
                    "\"evals_per_s\":%.1f,\"warm_refill_s\":%.6f,"
                    "\"cache_hit_rate\":%.4f,\"dls_solve_s\":%.4f,"
                    "\"solver_feasible\":%s}\n",
                    graph.config().name.c_str(), threads,
                    requests.size(), cold, evals_per_s, warm, hit_rate,
                    solve, solved.feasible ? "true" : "false");
    }
    t.print("Evaluator batch throughput (memoized exact backend)");
    std::printf("Warm refills are pure cache hits; the solver's matrix "
                "fill sees the same hit-rate when phases share one "
                "evaluator.\n");
}

/**
 * The refiner-batch micro-bench: the level-2 refinement with serial
 * (1-thread) vs batched (N-thread) StepEvaluator fitness, per engine,
 * plus the step-cache hit rate of a repeat solve on the same solver.
 * On a single-core host the timings are flat but the counters — and
 * the bit-identical plans — still validate the batching contract.
 */
void
refinerBatch(const sim::TrainingSimulator &sim,
             const model::ComputeGraph &graph)
{
    const int hw_threads = std::max(
        4u, std::thread::hardware_concurrency());
    TablePrinter t({"Engine", "Threads", "Solve (s)", "Step sims",
                    "Step hits", "Repeat sims", "Repeat hit rate"});
    for (const solver::SearchEngineKind kind :
         {solver::SearchEngineKind::Genetic,
          solver::SearchEngineKind::Annealing}) {
        for (int threads : {1, hw_threads}) {
            solver::SolverConfig cfg;
            cfg.engine = kind;
            cfg.eval_threads = threads;
            solver::DlsSolver solver(sim, cfg);

            const double t0 = now();
            const solver::SolverResult first = solver.solve(graph);
            const double solve_s = now() - t0;
            const double t1 = now();
            const solver::SolverResult repeat = solver.solve(graph);
            const double repeat_s = now() - t1;

            const long repeat_queries =
                repeat.step_sims + repeat.step_cache_hits;
            const double repeat_hit_rate =
                repeat_queries > 0
                    ? static_cast<double>(repeat.step_cache_hits) /
                          static_cast<double>(repeat_queries)
                    : 0.0;
            t.addRow({solver::searchEngineName(kind),
                      std::to_string(threads),
                      TablePrinter::fmt(solve_s, 2),
                      std::to_string(first.step_sims),
                      std::to_string(first.step_cache_hits),
                      std::to_string(repeat.step_sims),
                      TablePrinter::fmt(repeat_hit_rate, 3)});
            std::printf(
                "BENCH_JSON {\"bench\":\"search_time\","
                "\"section\":\"refiner_batch\",\"model\":\"%s\","
                "\"engine\":\"%s\",\"threads\":%d,"
                "\"solve_s\":%.4f,\"step_sims\":%ld,"
                "\"step_cache_hits\":%ld,\"repeat_solve_s\":%.4f,"
                "\"repeat_step_sims\":%ld,"
                "\"repeat_step_hit_rate\":%.4f,"
                "\"feasible\":%s}\n",
                graph.config().name.c_str(),
                solver::searchEngineName(kind), threads, solve_s,
                first.step_sims, first.step_cache_hits, repeat_s,
                repeat.step_sims, repeat_hit_rate,
                first.feasible ? "true" : "false");
        }
    }
    t.print("Refiner fitness: serial vs batched, repeat hit rate");
    std::printf("Repeat solves re-simulate nothing (step memo); plans "
                "are bit-identical across thread counts.\n");
}

}  // namespace

namespace {

/**
 * The service-cache section: the same OptimizeRequest twice through
 * one TempService. The first solve fills the shared evaluator; the
 * repeat must be served entirely from it — zero new matrix
 * measurements — which is exactly what a serving process gets when
 * traffic repeats (model, wafer) pairs.
 */
void
serviceCacheReuse(const char *name)
{
    api::TempService service;  // fresh caches: first = cold fill
    api::OptimizeRequest request{model::modelByName(name)};
    const api::Response first = service.run(request);
    const api::Response repeat = service.run(request);
    std::printf("Repeat OptimizeRequest(%s): framework %s, "
                "%ld new measurements (first solve: %ld), "
                "%ld cache hits, %ld new step sims (first: %ld), "
                "%.3f s vs %.3f s\n",
                name, repeat.framework_reused ? "reused" : "rebuilt",
                repeat.solver.matrix_measurements,
                first.solver.matrix_measurements,
                repeat.solver.cache_hits, repeat.solver.step_sims,
                first.solver.step_sims, repeat.wall_time_s,
                first.wall_time_s);
    std::printf("BENCH_JSON {\"bench\":\"search_time\","
                "\"section\":\"service_cache\",\"model\":\"%s\","
                "\"framework_reused\":%s,"
                "\"first_measurements\":%ld,"
                "\"repeat_measurements\":%ld,\"repeat_cache_hits\":%ld,"
                "\"first_step_sims\":%ld,\"repeat_step_sims\":%ld,"
                "\"repeat_step_cache_hits\":%ld,"
                "\"first_s\":%.6f,\"repeat_s\":%.6f}\n",
                name, repeat.framework_reused ? "true" : "false",
                first.solver.matrix_measurements,
                repeat.solver.matrix_measurements,
                repeat.solver.cache_hits, first.solver.step_sims,
                repeat.solver.step_sims,
                repeat.solver.step_cache_hits, first.wall_time_s,
                repeat.wall_time_s);
}

}  // namespace

namespace {

/**
 * The schedule-cache section: the network layer under everything. A
 * cold solve lowers each distinct collective task once and serves the
 * rest from the content-keyed net::ScheduleCache (>50% hit rate by the
 * time the matrix, seeding and refiner have run); a repeat solve
 * re-lowers nothing because the breakdown/step memos absorb the
 * queries and charge their schedule work as hits.
 */
void
scheduleCacheSection(const char *name)
{
    api::TempService service;  // fresh caches: first = cold lowering
    api::OptimizeRequest request{model::modelByName(name)};
    const api::Response first = service.run(request);
    const api::Response repeat = service.run(request);

    const auto hit_rate = [](const solver::SolverResult &r) {
        return net::ScheduleCacheStats{r.schedule_lowerings,
                                       r.schedule_cache_hits}
            .hitRate();
    };
    std::printf("Schedule cache (%s): cold %ld lowerings / %ld hits "
                "(rate %.3f); repeat %ld lowerings / %ld hits "
                "(rate %.3f)\n",
                name, first.solver.schedule_lowerings,
                first.solver.schedule_cache_hits, hit_rate(first.solver),
                repeat.solver.schedule_lowerings,
                repeat.solver.schedule_cache_hits,
                hit_rate(repeat.solver));
    std::printf("BENCH_JSON {\"bench\":\"search_time\","
                "\"section\":\"schedule_cache\",\"model\":\"%s\","
                "\"cold_lowerings\":%ld,\"cold_hits\":%ld,"
                "\"cold_hit_rate\":%.4f,\"repeat_lowerings\":%ld,"
                "\"repeat_hits\":%ld,\"repeat_hit_rate\":%.4f}\n",
                name, first.solver.schedule_lowerings,
                first.solver.schedule_cache_hits, hit_rate(first.solver),
                repeat.solver.schedule_lowerings,
                repeat.solver.schedule_cache_hits,
                hit_rate(repeat.solver));
}

/**
 * The persistent-tier section: the service-cache experiment across a
 * process boundary. A cold service solves and saves a snapshot; a
 * *fresh* service warm-starts from the file and answers the same
 * request from the imported memos. The acceptance bars are the repo's
 * warm-start contract — zero new matrix measurements, zero new step
 * simulations, bit-identical specs, and >= 5x wall-clock — enforced
 * through the exit code so CI fails when the persist path rots.
 */
int
warmStartSection(const char *name)
{
    const std::string path = "warm_start.bench.snap";
    std::remove(path.c_str());
    const api::OptimizeRequest request{model::modelByName(name)};

    api::Response cold;
    std::string error;
    {
        api::TempService service;  // the "first process"
        cold = service.run(request);
        if (!cold.ok || !service.saveSnapshot(path, &error)) {
            std::printf("warm_start: cold solve/save failed: %s\n",
                        error.c_str());
            return 1;
        }
    }

    api::TempService warmed;  // the "restarted process"
    if (!warmed.warmStart(path, &error)) {
        std::printf("warm_start: load failed: %s\n", error.c_str());
        std::remove(path.c_str());
        return 1;
    }
    const api::Response warm = warmed.run(request);
    std::remove(path.c_str());

    const double speedup = warm.wall_time_s > 0.0
                               ? cold.wall_time_s / warm.wall_time_s
                               : 0.0;
    const bool identical =
        warm.solver.per_op_specs == cold.solver.per_op_specs &&
        warm.solver.step_time_s == cold.solver.step_time_s;
    const api::TempService::PersistStats persist =
        warmed.persistStats();

    TablePrinter t({"Model", "Cold (s)", "Warm (s)", "Speedup",
                    "Warm meas.", "Warm sims", "Identical"});
    t.addRow({name, TablePrinter::fmt(cold.wall_time_s, 3),
              TablePrinter::fmt(warm.wall_time_s, 3),
              TablePrinter::fmtX(speedup, 1),
              std::to_string(warm.solver.matrix_measurements),
              std::to_string(warm.solver.step_sims),
              identical ? "yes" : "NO"});
    t.print("Snapshot warm start across a process boundary");
    std::printf("BENCH_JSON {\"bench\":\"search_time\","
                "\"section\":\"warm_start\",\"model\":\"%s\","
                "\"cold_s\":%.6f,\"warm_s\":%.6f,\"speedup\":%.2f,"
                "\"warm_matrix_measurements\":%ld,"
                "\"warm_step_sims\":%ld,\"warm_cache_hits\":%ld,"
                "\"blocks_staged\":%ld,\"frameworks_warmed\":%ld,"
                "\"bit_identical\":%s}\n",
                name, cold.wall_time_s, warm.wall_time_s, speedup,
                warm.solver.matrix_measurements, warm.solver.step_sims,
                warm.solver.cache_hits, persist.blocks_staged,
                persist.frameworks_warmed, identical ? "true" : "false");

    int failures = 0;
    const auto bar = [&](bool ok, const char *what) {
        std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
        if (!ok)
            ++failures;
    };
    bar(warm.solver.matrix_measurements == 0,
        "warm solve re-measures nothing");
    bar(warm.solver.step_sims == 0, "warm solve re-simulates nothing");
    bar(identical, "warm answer is bit-identical to the cold one");
    bar(speedup >= 5.0, "warm start is >= 5x faster");
    return failures;
}

/**
 * The portfolio section: the engine race under SolveBudget quantum
 * caps. Three experiments, bars enforced through the exit code:
 *
 *  - win rates: the portfolio raced on several models; per-engine
 *    EngineAccounts say who won each race, and the portfolio's answer
 *    must never be worse than the best member run standalone with the
 *    same configuration (unbudgeted, that is a structural guarantee —
 *    the race keeps the best member incumbent).
 *  - best-found-vs-budget curve: the same race under growing quantum
 *    caps. A budgeted run is the bit-exact prefix of the unbudgeted
 *    one, so the incumbent must improve monotonically with budget.
 *  - exact-vs-heuristic gap: the ExactChainEngine's branch-and-bound
 *    against the ExhaustiveSolver on a chain both can finish — they
 *    must agree bit-for-bit — plus the DP plan's certified additive
 *    optimality gap.
 */
int
portfolioSection(const sim::TrainingSimulator &sim)
{
    int failures = 0;
    const auto bar = [&](bool ok, const std::string &what) {
        std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
        if (!ok)
            ++failures;
    };
    const auto baseConfig = [](solver::SearchEngineKind kind) {
        solver::SolverConfig cfg;
        cfg.engine = kind;
        cfg.ga_generations = 8;
        cfg.annealing.iterations = 8;
        return cfg;
    };

    // --- Win rates + never-worse-than-best-member, per model. ---
    TablePrinter races({"Model", "Portfolio (s)", "Winner",
                        "Best member", "Member (s)", "Quanta"});
    std::map<std::string, int> wins;
    for (const char *name : {"GPT-3 6.7B", "Llama2 7B", "Llama3 70B"}) {
        const auto graph =
            model::ComputeGraph::transformer(model::modelByName(name));
        const solver::SolverResult portfolio =
            solver::DlsSolver(sim,
                              baseConfig(
                                  solver::SearchEngineKind::Portfolio))
                .solve(graph);

        std::string winner = "dp";
        for (const solver::EngineAccount &account :
             portfolio.engine_accounts)
            if (account.winner)
                winner = account.engine;
        ++wins[winner];

        std::string best_member = "-";
        double best_member_time = 0.0;
        for (const solver::SearchEngineKind kind :
             {solver::SearchEngineKind::Genetic,
              solver::SearchEngineKind::Annealing,
              solver::SearchEngineKind::BeamTabu}) {
            const solver::SolverResult single =
                solver::DlsSolver(sim, baseConfig(kind)).solve(graph);
            if (best_member == "-" ||
                single.step_time_s < best_member_time) {
                best_member = solver::searchEngineName(kind);
                best_member_time = single.step_time_s;
            }
        }
        races.addRow({name, TablePrinter::fmt(portfolio.step_time_s, 5),
                      winner, best_member,
                      TablePrinter::fmt(best_member_time, 5),
                      std::to_string(portfolio.quanta_used)});
        std::string accounts_json;
        for (const solver::EngineAccount &account :
             portfolio.engine_accounts) {
            if (!accounts_json.empty())
                accounts_json += ",";
            char buf[192];
            std::snprintf(buf, sizeof(buf),
                          "{\"engine\":\"%s\",\"steps\":%d,"
                          "\"fitness_queries\":%ld,\"winner\":%s}",
                          account.engine.c_str(), account.steps,
                          account.fitness_queries,
                          account.winner ? "true" : "false");
            accounts_json += buf;
        }
        std::printf("BENCH_JSON {\"bench\":\"search_time\","
                    "\"section\":\"portfolio\",\"model\":\"%s\","
                    "\"portfolio_step_time_s\":%.9f,"
                    "\"best_member\":\"%s\","
                    "\"best_member_step_time_s\":%.9f,"
                    "\"winner\":\"%s\",\"quanta_used\":%ld,"
                    "\"accounts\":[%s]}\n",
                    name, portfolio.step_time_s, best_member.c_str(),
                    best_member_time, winner.c_str(),
                    portfolio.quanta_used, accounts_json.c_str());
        bar(portfolio.feasible &&
                portfolio.step_time_s <= best_member_time * 1.0001,
            std::string("portfolio never worse than best member (") +
                name + ")");
    }
    races.print("Portfolio race vs standalone members (unbudgeted)");
    for (const auto &[engine, count] : wins)
        std::printf("  win rate %s: %d/3\n", engine.c_str(), count);

    // --- Best-found-vs-budget curve. ---
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    const solver::SolverResult unbudgeted =
        solver::DlsSolver(
            sim, baseConfig(solver::SearchEngineKind::Portfolio))
            .solve(graph);
    TablePrinter curve({"Budget (quanta)", "Used", "Exhausted",
                        "Step time (s)"});
    double previous = 0.0;
    bool monotone = true;
    for (const int percent : {25, 50, 75, 100}) {
        solver::SolverConfig cfg =
            baseConfig(solver::SearchEngineKind::Portfolio);
        cfg.deadline.max_quanta =
            std::max<long>(1, unbudgeted.quanta_used * percent / 100);
        const solver::SolverResult capped =
            solver::DlsSolver(sim, cfg).solve(graph);
        if (previous > 0.0 && capped.step_time_s > previous * 1.0001)
            monotone = false;
        previous = capped.step_time_s;
        curve.addRow({std::to_string(cfg.deadline.max_quanta),
                      std::to_string(capped.quanta_used),
                      capped.budget_exhausted ? "yes" : "no",
                      TablePrinter::fmt(capped.step_time_s, 5)});
        std::printf("BENCH_JSON {\"bench\":\"search_time\","
                    "\"section\":\"portfolio_budget_curve\","
                    "\"model\":\"GPT-3 6.7B\",\"budget_quanta\":%ld,"
                    "\"quanta_used\":%ld,\"budget_exhausted\":%s,"
                    "\"step_time_s\":%.9f}\n",
                    cfg.deadline.max_quanta, capped.quanta_used,
                    capped.budget_exhausted ? "true" : "false",
                    capped.step_time_s);
    }
    curve.print("Best-found vs quantum budget (bit-exact prefixes)");
    bar(monotone, "best-found improves monotonically with budget");
    bar(previous <= unbudgeted.step_time_s * 1.0001 &&
            previous >= unbudgeted.step_time_s * 0.9999,
        "full-budget run matches the unbudgeted answer");

    // --- Exact vs exhaustive, and the certified DP gap. ---
    solver::StrategySpaceOptions space;
    space.allow_sp = false;
    space.allow_cp = false;
    constexpr int kOps = 4;
    solver::ExhaustiveSolver exhaustive(sim, space);
    const solver::SolverResult ex =
        exhaustive.solve(graph, kOps, /*time_budget_s=*/60.0);

    const std::vector<parallel::ParallelSpec> candidates =
        solver::enumerateStrategies(sim.wafer().dieCount(),
                                    graph.config(), space);
    eval::ExactEvaluator evaluator(sim.costModel());
    std::vector<eval::EvalRequest> requests;
    for (int i = 0; i < kOps; ++i)
        for (const parallel::ParallelSpec &spec : candidates)
            requests.push_back({i, spec, true});
    const std::vector<cost::OpCostBreakdown> cells =
        evaluator.evaluateBatch(graph, requests);
    std::vector<double> totals(cells.size());
    cost::breakdownTotals(cells, totals.data());
    std::vector<std::vector<double>> op_cost(kOps);
    for (int i = 0; i < kOps; ++i) {
        const double *row =
            totals.data() + static_cast<std::size_t>(i) *
                                candidates.size();
        op_cost[i].assign(row, row + candidates.size());
    }
    const solver::ExactChainEngine::BnbResult bnb =
        solver::ExactChainEngine::branchAndBound(
            graph, candidates, op_cost, sim.costModel(),
            solver::ExactChainEngine::kMaxNodes);

    // The DP's additive cost on the same truncated chain, certified
    // against the exact optimum: the heuristic optimality gap.
    solver::SolverConfig dp_cfg;
    dp_cfg.space = space;
    dp_cfg.engine = solver::SearchEngineKind::NoRefine;
    const solver::SolverResult dp =
        solver::DlsSolver(sim, dp_cfg).solve(graph);
    double dp_additive = 0.0;
    for (int i = 0; i < kOps; ++i) {
        std::size_t chosen = 0;
        for (std::size_t s = 0; s < candidates.size(); ++s)
            if (candidates[s] == dp.per_op_specs[i]) {
                chosen = s;
                break;
            }
        dp_additive += op_cost[i][chosen];
        if (i > 0 && !(dp.per_op_specs[i - 1] == dp.per_op_specs[i]))
            dp_additive += sim.costModel().interOpTime(
                graph.op(i - 1), dp.per_op_specs[i - 1],
                dp.per_op_specs[i]);
    }
    const double gap =
        bnb.additive_cost > 0.0
            ? dp_additive / bnb.additive_cost - 1.0
            : 0.0;
    std::printf("Exact certification (%d-op chain): exhaustive %.9f s, "
                "B&B %.9f s (%ld nodes), DP additive %.9f s "
                "(gap %.4f%%)\n",
                kOps, ex.step_time_s, bnb.additive_cost, bnb.nodes,
                dp_additive, gap * 100.0);
    std::printf("BENCH_JSON {\"bench\":\"search_time\","
                "\"section\":\"exact_gap\",\"model\":\"GPT-3 6.7B\","
                "\"ops\":%d,\"exhaustive_additive_s\":%.9f,"
                "\"bnb_additive_s\":%.9f,\"bnb_nodes\":%ld,"
                "\"bnb_complete\":%s,\"dp_additive_s\":%.9f,"
                "\"dp_gap\":%.6f}\n",
                kOps, ex.step_time_s, bnb.additive_cost, bnb.nodes,
                bnb.complete ? "true" : "false", dp_additive, gap);
    bar(ex.feasible && bnb.complete &&
            bnb.additive_cost == ex.step_time_s,
        "exact engine matches exhaustive bit-for-bit");
    bar(gap >= -1e-12, "DP never beats the certified additive optimum");
    return failures;
}

}  // namespace

int
main()
{
    bench::banner("Sec. VIII-H", "search time: DLS vs exhaustive (ILP)");

    // The DLS side goes through the service API; the exhaustive
    // baseline (not a service workflow) borrows the same cached
    // framework's simulator, so both sides price against one wafer.
    api::TempService service;
    const sim::TrainingSimulator &sim =
        service.framework(hw::WaferConfig::paperDefault(), {})
            ->simulator();

    TablePrinter t({"Model", "DLS time (s)", "DLS evals",
                    "Exhaustive time (s)", "Exhaustive evals",
                    "Exhaustive scope", "Speedup"});
    for (const char *name : {"GPT-3 6.7B", "Llama2 7B", "GPT-3 76B"}) {
        const auto graph =
            model::ComputeGraph::transformer(model::modelByName(name));

        solver::SolverConfig cfg;
        const api::Response dls_response =
            service.run(api::OptimizeRequest{model::modelByName(name)});
        const solver::SolverResult &fast = dls_response.solver;

        // The exhaustive baseline explodes exponentially; cap it at the
        // first 5 operators and a 60 s budget, then report the per-op
        // extrapolated cost of the full 12-op instance.
        solver::ExhaustiveSolver exhaustive(sim, cfg.space);
        const auto slow = exhaustive.solve(graph, /*op_limit=*/5,
                                           /*time_budget_s=*/60.0);

        const double covered_ops = 5.0;
        const double branch =
            slow.evaluations > 0
                ? std::pow(static_cast<double>(slow.evaluations),
                           1.0 / covered_ops)
                : 0.0;
        const double full_est =
            slow.search_time_s *
            std::pow(branch, graph.opCount() - covered_ops);

        char scope[64];
        std::snprintf(scope, sizeof(scope), "5/%d ops (full est %.2g s)",
                      graph.opCount(), full_est);
        const double work_ratio =
            fast.evaluations > 0
                ? static_cast<double>(slow.evaluations) /
                      static_cast<double>(fast.evaluations)
                : 0.0;
        t.addRow({name, TablePrinter::fmt(fast.search_time_s, 2),
                  std::to_string(fast.evaluations),
                  TablePrinter::fmt(slow.search_time_s, 2),
                  std::to_string(slow.evaluations), scope,
                  TablePrinter::fmtX(work_ratio, 0) + " (5-op work)"});
        std::printf("BENCH_JSON {\"bench\":\"search_time\","
                    "\"section\":\"dls_vs_exhaustive\",\"model\":\"%s\","
                    "\"dls_time_s\":%.4f,\"dls_evaluations\":%ld,"
                    "\"dls_matrix_measurements\":%ld,"
                    "\"dls_cache_hits\":%ld,\"exhaustive_time_s\":%.4f,"
                    "\"exhaustive_evaluations\":%ld}\n",
                    name, fast.search_time_s, fast.evaluations,
                    fast.matrix_measurements, fast.cache_hits,
                    slow.search_time_s, slow.evaluations);
    }
    t.print("Single-wafer strategy search");
    std::printf("\nPaper: ILP ~40 h vs DLS ~3 min (>200x). Here the "
                "exhaustive baseline is capped at 5 of 12 operators and "
                "extrapolated; DLS covers the full chain in seconds.\n");

    bench::banner("Evaluation layer",
                  "batch matrix fill: threads and cache hit-rate");
    evaluatorThroughput(sim, model::ComputeGraph::transformer(
                                 model::modelByName("GPT-3 6.7B")));

    bench::banner("Refinement layer",
                  "full-step fitness: serial vs batched, step cache");
    refinerBatch(sim, model::ComputeGraph::transformer(
                          model::modelByName("GPT-3 6.7B")));

    bench::banner("Service layer",
                  "framework cache: repeated requests re-measure "
                  "nothing");
    serviceCacheReuse("GPT-3 6.7B");

    bench::banner("Network layer",
                  "schedule cache: collective lowerings vs hits");
    scheduleCacheSection("GPT-3 6.7B");

    bench::banner("Portfolio",
                  "engine race, budget curve, exact certification");
    int failures = portfolioSection(sim);

    bench::banner("Persistent tier",
                  "snapshot warm start: restart without re-measuring");
    failures += warmStartSection("GPT-3 6.7B");
    if (failures > 0) {
        std::printf("\nsearch_time acceptance bars FAILED (%d)\n",
                    failures);
        return 1;
    }
    std::printf("\nsearch_time acceptance bars passed\n");
    return 0;
}
