/**
 * @file
 * Reproduces the Sec. VIII-H search-time comparison: the dual-level
 * search (graph partition + DP + GA) vs the exhaustive branch-and-bound
 * baseline standing in for the ILP of [144] (Alpa), which the paper
 * reports at ~40 hours for GPT-3 76B on 64 dies vs ~3 minutes for DLS
 * (>200x).
 */
#include "bench_util.hpp"

#include "sim/trainer_sim.hpp"
#include "solver/dls_solver.hpp"

using namespace temp;

int
main()
{
    bench::banner("Sec. VIII-H", "search time: DLS vs exhaustive (ILP)");

    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    sim::TrainingSimulator sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});

    TablePrinter t({"Model", "DLS time (s)", "DLS evals",
                    "Exhaustive time (s)", "Exhaustive evals",
                    "Exhaustive scope", "Speedup"});
    for (const char *name : {"GPT-3 6.7B", "Llama2 7B", "GPT-3 76B"}) {
        const auto graph =
            model::ComputeGraph::transformer(model::modelByName(name));

        solver::SolverConfig cfg;
        solver::DlsSolver dls(sim, cfg);
        const auto fast = dls.solve(graph);

        // The exhaustive baseline explodes exponentially; cap it at the
        // first 5 operators and a 60 s budget, then report the per-op
        // extrapolated cost of the full 12-op instance.
        solver::ExhaustiveSolver exhaustive(sim, cfg.space);
        const auto slow = exhaustive.solve(graph, /*op_limit=*/5,
                                           /*time_budget_s=*/60.0);

        const double covered_ops = 5.0;
        const double branch =
            slow.evaluations > 0
                ? std::pow(static_cast<double>(slow.evaluations),
                           1.0 / covered_ops)
                : 0.0;
        const double full_est =
            slow.search_time_s *
            std::pow(branch, graph.opCount() - covered_ops);

        char scope[64];
        std::snprintf(scope, sizeof(scope), "5/%d ops (full est %.2g s)",
                      graph.opCount(), full_est);
        const double work_ratio =
            fast.evaluations > 0
                ? static_cast<double>(slow.evaluations) /
                      static_cast<double>(fast.evaluations)
                : 0.0;
        t.addRow({name, TablePrinter::fmt(fast.search_time_s, 2),
                  std::to_string(fast.evaluations),
                  TablePrinter::fmt(slow.search_time_s, 2),
                  std::to_string(slow.evaluations), scope,
                  TablePrinter::fmtX(work_ratio, 0) + " (5-op work)"});
    }
    t.print("Single-wafer strategy search");
    std::printf("\nPaper: ILP ~40 h vs DLS ~3 min (>200x). Here the "
                "exhaustive baseline is capped at 5 of 12 operators and "
                "extrapolated; DLS covers the full chain in seconds.\n");
    return 0;
}
