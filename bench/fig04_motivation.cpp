/**
 * @file
 * Reproduces Fig. 4(b) and 4(c): the motivation measurements.
 *
 * (b) Training-time breakdown under Megatron-LM on the WSC: collective
 *     communication share and D2D bandwidth utilisation.
 * (c) Memory overhead of Megatron-LM vs. an ideal (replication-free)
 *     baseline, against the per-die capacity line.
 */
#include "bench_util.hpp"

#include "core/framework.hpp"
#include "sim/gpu_cluster.hpp"

using namespace temp;

int
main()
{
    bench::banner("Fig. 4(b)",
                  "Megatron-LM training-time breakdown (GPU profile)");
    core::TempFramework fw(hw::WaferConfig::paperDefault());

    // The paper's motivation profile runs Megatron-LM on conventional
    // accelerators (collective comm ~40% of step time at low bandwidth
    // utilisation); reproduce it on the A100 cluster model.
    sim::GpuClusterSimulator gpu(hw::GpuClusterConfig::a100Default());
    TablePrinter breakdown({"Model", "Collective", "Other",
                            "D2D/NIC util"});
    for (const char *name :
         {"GPT-3 6.7B", "GPT-3 76B", "GPT-3 175B"}) {
        const auto m = model::modelByName(name).withSeqBatch(2048, 8);
        const auto graph = model::ComputeGraph::transformer(m);
        parallel::ParallelSpec spec;  // Megatron-1 style DP x TP
        spec.dp = 4;
        spec.tp = 8;
        const auto r = gpu.simulate(graph, spec);
        const double coll_share =
            r.step_time > 0.0 ? r.exposed_comm / r.step_time : 0.0;
        // NIC busy share: collective wall time over step time, per the
        // paper's "BW utilization" bars staying below ~55%.
        const double util =
            r.step_time > 0.0 ? r.collective_time / r.step_time : 0.0;
        breakdown.addRow({name, TablePrinter::fmtPct(coll_share),
                          TablePrinter::fmtPct(1.0 - coll_share),
                          TablePrinter::fmtPct(std::min(1.0, util))});
    }
    breakdown.print(
        "Norm train time breakdown (Megatron-1, GPU cluster)");

    bench::banner("Fig. 4(c)", "Megatron memory overhead vs ideal");
    const double capacity =
        hw::WaferConfig::paperDefault().hbm.capacity_bytes;
    std::printf("Per-die memory capacity: %.0f GB (dashed line)\n",
                capacity / 1e9);

    TablePrinter memory({"Model", "Megatron GB", "Ideal GB", "Overhead",
                         "Megatron OOM?"});
    for (const char *name :
         {"Llama2 7B", "Llama3 70B", "GPT-3 175B"}) {
        const auto model = model::modelByName(name);
        const auto mega = fw.evaluateBaseline(
            baselines::BaselineKind::Megatron1,
            tcme::MappingEngineKind::SMap, model);
        // Ideal: fully sharded state, no replication (what TSPP aims at).
        const double ideal =
            model.paramCount() * (2.0 + 2.0 + 12.0) / 32.0 +
            mega.report.peak_footprint[mem::MemClass::Activations] /
                8.0;
        memory.addRow(
            {name, TablePrinter::fmt(mega.report.peak_mem_bytes / 1e9, 1),
             TablePrinter::fmt(ideal / 1e9, 1),
             TablePrinter::fmtX(mega.report.peak_mem_bytes / ideal),
             mega.report.oom ? "OOM" : "fits"});
    }
    memory.print("Peak per-die memory, Megatron vs ideal");
    return 0;
}
