/**
 * @file
 * Reproduces Fig. 9: the TATP parallel-degree sweet spot.
 *
 * One GPT-3 175B-class linear layer distributed across N dies with
 * TATP degree N: per-die memory and compute fall as O(1/N) while the
 * per-round communication stays O(1), so throughput peaks at N ~ 8-16
 * and power efficiency at N ~ 4-8.
 */
#include "bench_util.hpp"

#include "cost/cost_model.hpp"
#include "model/model_zoo.hpp"

using namespace temp;

int
main()
{
    bench::banner("Fig. 9", "TATP degree sweet spot (GPT-3 175B layer)");

    hw::Wafer wafer(hw::WaferConfig::paperDefault().withGrid(8, 8));
    cost::WaferCostModel model(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const auto cfg = model::modelByName("GPT-3 175B").withSeqBatch(2048, 1);
    const auto graph = model::ComputeGraph::transformer(cfg);
    const model::Operator *fc1 = nullptr;
    for (const auto &op : graph.ops())
        if (op.name == "fc1")
            fc1 = &op;

    struct Row
    {
        int n;
        double throughput;
        double memory;
        double power;
        double efficiency;
    };
    std::vector<Row> rows;
    for (int n : {2, 4, 8, 16, 32, 64}) {
        parallel::ParallelSpec spec;
        spec.tatp = n;
        const parallel::GroupLayout layout(wafer.topology(), spec);
        const parallel::OpExecution exec =
            model.partitioner().analyze(*fc1, layout);
        const cost::OpCostBreakdown c = model.opCost(exec, *fc1, layout);
        if (!c.feasible)
            continue;

        // Fixed workload on N dies: throughput = work / time.
        const double throughput = 1.0 / c.total();
        const double memory = exec.footprint().total();
        const cost::EnergyBreakdown e = model.powerModel().stepEnergy(
            c.flops, c.dram_bytes, c.d2d_link_bytes, c.total(), n);
        const double power = e.total() / c.total();
        rows.push_back({n, throughput, memory, power,
                        model.powerModel().powerEfficiency(c.flops, e)});
    }

    std::vector<double> tput, mem, pwr, eff;
    for (const Row &r : rows) {
        tput.push_back(r.throughput);
        mem.push_back(r.memory);
        pwr.push_back(r.power);
        eff.push_back(r.efficiency);
    }
    const auto nt = bench::normalizeToMax(tput);
    const auto nm = bench::normalizeToMax(mem);
    const auto np = bench::normalizeToMax(pwr);
    const auto ne = bench::normalizeToMax(eff);

    TablePrinter table({"N (TATP degree)", "Norm throughput",
                        "Norm per-die memory", "Norm power",
                        "Norm power-eff"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        table.addRow({std::to_string(rows[i].n), TablePrinter::fmt(nt[i]),
                      TablePrinter::fmt(nm[i]), TablePrinter::fmt(np[i]),
                      TablePrinter::fmt(ne[i])});
    }
    table.print("Throughput / memory / power vs TATP degree N");

    // Both curves form plateaus; report the plateau band (within 5% of
    // the peak), which is what "sweet spot" means in Fig. 9.
    auto band = [&](const std::vector<double> &norm) {
        int lo = -1, hi = -1;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (norm[i] >= 0.95) {
                if (lo < 0)
                    lo = rows[i].n;
                hi = rows[i].n;
            }
        }
        return std::make_pair(lo, hi);
    };
    const auto [t_lo, t_hi] = band(nt);
    const auto [e_lo, e_hi] = band(ne);
    std::printf("\nThroughput sweet spot: N in [%d, %d] "
                "(paper: N ~ 8-16)\n",
                t_lo, t_hi);
    std::printf("Power-efficiency sweet spot: N in [%d, %d] "
                "(paper: N ~ 4-8)\n",
                e_lo, e_hi);
    return 0;
}
