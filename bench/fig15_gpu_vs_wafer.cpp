/**
 * @file
 * Reproduces Fig. 15: GPU cluster vs wafer-scale chip.
 *
 * A 32-GPU A100 cluster (matched FP16 peak) running Megatron-3 vs a
 * 32-die WSC running MeSP+GMap and TEMP. The expected shape: the GPU
 * cluster beats a naively-mapped wafer (flexible switch vs rigid mesh)
 * but the TEMP-optimised wafer wins by exploiting its 6x link bandwidth.
 */
#include "bench_util.hpp"

#include "common/stats.hpp"

#include "core/framework.hpp"
#include "sim/gpu_cluster.hpp"

using namespace temp;

int
main()
{
    bench::banner("Fig. 15", "GPU cluster vs WSC training performance");

    // Sec. VIII-B: the 32-die WSC is configured to match the A100
    // cluster's theoretical FP16 peak (32 x 312 TFLOPS), so only the
    // interconnects differ: rigid 4 TB/s mesh vs flexible 600 GB/s
    // switch.
    hw::WaferConfig matched = hw::WaferConfig::paperDefault();
    matched.die.peak_flops =
        hw::GpuClusterConfig::a100Default().peak_flops;
    core::TempFramework fw(matched);
    sim::GpuClusterSimulator gpu(hw::GpuClusterConfig::a100Default());

    std::vector<double> temp_over_gpu, temp_over_mesp;
    for (const auto &m : model::evaluationModels()) {
        // GPU + Megatron-3: tune over the MeSP family analytically.
        double best_gpu = -1.0;
        parallel::ParallelSpec best_gpu_spec;
        {
            hw::Wafer probe(matched);
            sim::TrainingSimulator probe_sim(
                probe, tcme::MappingPolicy{tcme::MappingEngineKind::GMap});
            baselines::BaselineGenerator gen(probe_sim);
            const auto graph = model::ComputeGraph::transformer(m);
            for (const auto &spec : gen.candidateFamily(
                     baselines::BaselineKind::MegatronSP, m)) {
                const auto r = gpu.simulate(graph, spec);
                if (!r.feasible || r.oom)
                    continue;
                if (best_gpu < 0.0 || r.step_time < best_gpu) {
                    best_gpu = r.step_time;
                    best_gpu_spec = spec;
                }
            }
        }

        const auto mesp = fw.evaluateBaseline(
            baselines::BaselineKind::MegatronSP,
            tcme::MappingEngineKind::GMap, m);
        const auto temp_result = fw.optimize(m);
        if (best_gpu < 0.0 || mesp.all_oom || !temp_result.feasible)
            continue;

        TablePrinter t({"System", "Norm latency", "Norm throughput"});
        const double ref = best_gpu;
        t.addRow({"A:GPU+MeSP  " + best_gpu_spec.str(), "1.000", "1.000"});
        t.addRow({"B:Wafer+MeSP " + mesp.spec.str(),
                  TablePrinter::fmt(mesp.report.step_time / ref),
                  TablePrinter::fmt(ref / mesp.report.step_time)});
        t.addRow({"C:Wafer+TEMP",
                  TablePrinter::fmt(temp_result.step_time_s / ref),
                  TablePrinter::fmt(ref / temp_result.step_time_s)});
        t.print(("Fig. 15 — " + m.name).c_str());

        temp_over_gpu.push_back(best_gpu / temp_result.step_time_s);
        temp_over_mesp.push_back(mesp.report.step_time /
                                 temp_result.step_time_s);
    }

    if (!temp_over_gpu.empty()) {
        std::printf("\nWafer+TEMP speedup over GPU+MeSP:  %.2fx "
                    "(paper: 1.16x)\n",
                    geomean(temp_over_gpu));
        std::printf("Wafer+TEMP speedup over Wafer+MeSP: %.2fx "
                    "(paper: 1.26x)\n",
                    geomean(temp_over_mesp));
    }
    return 0;
}
