/**
 * @file
 * Recovery under fault churn: replays a storm timeline through the
 * scenario engine (src/scenario) and enforces the robustness bars of
 * the continuous-operation story:
 *
 *  1. Determinism — two independent replays of the same timeline
 *     (fresh framework each) produce bit-identical replay digests.
 *  2. Warm recovery — every warm-seeded re-solve of a fresh fault
 *     state runs strictly fewer step sims than the cold replay of the
 *     same event (the SolveHints uniform cap + seed injection pay).
 *  3. Memo-backed revisits — a revisited fault state (same content
 *     fingerprint) reuses its degraded context and spends zero new
 *     matrix measurements.
 *
 * Also reports recovery-time p50/p95 and throughput-under-churn
 * (informational: wall time is the one nondeterministic field).
 */
#include "bench_util.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "scenario/scenario.hpp"

using namespace temp;

namespace {

std::vector<scenario::Event>
stormTimeline()
{
    using Kind = scenario::Event::Kind;
    std::vector<scenario::Event> events;
    auto add = [&](Kind kind, double at_s) -> scenario::Event & {
        scenario::Event event;
        event.kind = kind;
        event.at_s = at_s;
        events.push_back(event);
        return events.back();
    };
    {
        scenario::Event &e = add(Kind::SetFaults, 10);
        e.link_fault_rate = 0.08;
        e.fault_seed = 7;
    }
    add(Kind::Reoptimize, 20);
    {
        scenario::Event &e = add(Kind::SetFaults, 40);
        e.link_fault_rate = 0.05;
        e.core_fault_rate = 0.10;
        e.fault_seed = 13;
    }
    add(Kind::WaferJoin, 50);
    add(Kind::ClearFaults, 70);
    {
        // The event-0 draw again on a repaired wafer: the fault state
        // content-matches event 0, so its degraded context (and every
        // memo it holds) must be reused.
        scenario::Event &e = add(Kind::SetFaults, 90);
        e.link_fault_rate = 0.08;
        e.fault_seed = 7;
    }
    add(Kind::WaferLeave, 100);
    add(Kind::ClearFaults, 120);
    return events;
}

scenario::ScenarioReport
replayFresh(const model::ModelConfig &model,
            const std::vector<scenario::Event> &events, bool warm_seed)
{
    // A fresh framework per replay: neither run may inherit the
    // other's memos, or the warm-vs-cold comparison is meaningless.
    auto fw = std::make_shared<core::TempFramework>(
        hw::WaferConfig::paperDefault());
    scenario::ScenarioEngine::Options options;
    options.warm_seed = warm_seed;
    scenario::ScenarioEngine engine(fw, options);
    return engine.replay(model, events);
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const double rank = p * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace

int
main()
{
    bench::banner("Fault churn",
                  "recovery time and determinism under a fault storm");

    const model::ModelConfig model = model::modelByName("Llama2 7B");
    const std::vector<scenario::Event> events = stormTimeline();

    const scenario::ScenarioReport warm =
        replayFresh(model, events, true);
    const scenario::ScenarioReport warm2 =
        replayFresh(model, events, true);
    const scenario::ScenarioReport cold =
        replayFresh(model, events, false);

    TablePrinter t({"#", "Event", "State", "Warm sims", "Cold sims",
                    "Matrix meas", "Recovery (ms)", "Tokens/s"});
    std::vector<double> recoveries;
    for (std::size_t i = 0; i < warm.events.size(); ++i) {
        const scenario::EventReport &w = warm.events[i];
        const scenario::EventReport &c = cold.events[i];
        if (w.resolved)
            recoveries.push_back(w.recovery_wall_s);
        t.addRow({std::to_string(w.index),
                  scenario::eventKindName(w.kind), w.degradation,
                  std::to_string(w.step_sims),
                  std::to_string(c.step_sims),
                  std::to_string(w.matrix_measurements),
                  TablePrinter::fmt(w.recovery_wall_s * 1e3, 1),
                  TablePrinter::fmt(w.throughput_after, 0)});
    }
    t.print("Storm timeline (warm-seeded replay vs cold replay)");

    const double p50 = percentile(recoveries, 0.50);
    const double p95 = percentile(recoveries, 0.95);
    std::printf("\nRecovery wall time: p50 %.1f ms, p95 %.1f ms over "
                "%zu re-solves\n",
                p50 * 1e3, p95 * 1e3, recoveries.size());
    std::printf("Step sims under churn: %ld warm vs %ld cold; matrix "
                "measurements %ld warm vs %ld cold\n",
                warm.total_step_sims, cold.total_step_sims,
                warm.total_matrix_measurements,
                cold.total_matrix_measurements);

    std::printf("BENCH_JSON {\"bench\":\"fault_churn\","
                "\"events\":%zu,\"replay_digest\":\"%llu\","
                "\"replay_digest_repeat\":\"%llu\","
                "\"warm_step_sims\":%ld,\"cold_step_sims\":%ld,"
                "\"warm_matrix_measurements\":%ld,"
                "\"cold_matrix_measurements\":%ld,"
                "\"infeasible_events\":%d,\"fallback_events\":%d,"
                "\"recovery_p50_ms\":%.3f,\"recovery_p95_ms\":%.3f}\n",
                warm.events.size(),
                static_cast<unsigned long long>(warm.replay_digest),
                static_cast<unsigned long long>(warm2.replay_digest),
                warm.total_step_sims, cold.total_step_sims,
                warm.total_matrix_measurements,
                cold.total_matrix_measurements,
                warm.infeasible_events, warm.fallback_events, p50 * 1e3,
                p95 * 1e3);

    // ----------------------------------------------------------------
    // Acceptance bars.
    // ----------------------------------------------------------------
    int failures = 0;
    auto bar = [&](bool ok, const char *what) {
        std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
        if (!ok)
            ++failures;
    };
    std::printf("\nAcceptance bars:\n");

    bar(warm.replay_digest == warm2.replay_digest,
        "identical timeline+seed replays bit-identically "
        "(replay digests equal)");

    bool warm_strictly_cheaper = true;
    bool any_fresh_warm = false;
    for (std::size_t i = 0; i < warm.events.size(); ++i) {
        const scenario::EventReport &w = warm.events[i];
        if (!w.warm_seeded || w.context_reused)
            continue;  // fresh-state warm solves only: a revisited
                       // context is near-free in both runs
        any_fresh_warm = true;
        if (w.step_sims >= cold.events[i].step_sims)
            warm_strictly_cheaper = false;
    }
    bar(any_fresh_warm && warm_strictly_cheaper,
        "warm-seeded recovery runs strictly fewer step sims than the "
        "cold solve of the same event");

    bool revisit_seen = false;
    bool revisit_free = true;
    for (const scenario::EventReport &w : warm.events) {
        if (!w.context_reused)
            continue;
        revisit_seen = true;
        if (w.matrix_measurements != 0)
            revisit_free = false;
    }
    bar(revisit_seen && revisit_free,
        "revisited fault states reuse their degraded context with "
        "zero new matrix measurements");

    bar(warm.infeasible_events == warm.fallback_events,
        "every infeasible re-solve is an explicit flagged fallback "
        "(never silent)");

    if (failures > 0) {
        std::printf("\n%d acceptance bar(s) FAILED\n", failures);
        return 1;
    }
    std::printf("\nfault_churn acceptance bars passed\n");
    return 0;
}
