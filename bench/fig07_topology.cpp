/**
 * @file
 * Reproduces Fig. 7: topology-mismatch motivation for TATP.
 *
 * (a) On a 6x9 wafer with parallel degree 6, how many of the nine
 *     groups can map to contiguous physical chains/rings.
 * (b) Signal-integrity feasibility of direct links by distance.
 * (c) Compute utilisation of Llama2 models across wafer sizes when the
 *     stream groups are physically contiguous vs. scattered.
 */
#include "bench_util.hpp"

#include "parallel/layout.hpp"
#include "sim/trainer_sim.hpp"
#include "tatp/chain_mapper.hpp"

using namespace temp;

int
main()
{
    bench::banner("Fig. 7(a)", "group contiguity on a 6x9 die array");
    {
        hw::MeshTopology mesh(6, 9);
        parallel::ParallelSpec spec;
        spec.tatp = 6;
        spec.dp = 9;
        parallel::GroupLayout snake_layout(mesh, spec);
        tatp::ChainMapper mapper(mesh);
        int contiguous = 0;
        for (const auto &group :
             snake_layout.groups(parallel::Axis::TATP))
            contiguous += mapper.analyzeChain(group).contiguous ? 1 : 0;
        std::printf("Topology-aware layout: %d/9 degree-6 groups map to "
                    "contiguous chains\n",
                    contiguous);

        // A naive row-major (non-snake) grouping: groups of 6
        // consecutive row-major ids straddle row boundaries.
        int naive_contiguous = 0;
        for (int g = 0; g < 9; ++g) {
            std::vector<hw::DieId> group;
            for (int i = 0; i < 6; ++i)
                group.push_back(g * 6 + i);
            naive_contiguous +=
                mapper.analyzeChain(group).contiguous ? 1 : 0;
        }
        std::printf("Naive row-major allocation: %d/9 contiguous "
                    "(tetris-like groups, Fig. 7a red)\n",
                    naive_contiguous);
    }

    bench::banner("Fig. 7(b)", "signal-integrity limits on direct links");
    {
        hw::Wafer wafer(hw::WaferConfig::paperDefault());
        const auto &mesh = wafer.topology();
        TablePrinter si({"Link", "Wire length (mm)", "Feasible (<50mm)"});
        struct Case { const char *name; int r2, c2; };
        const Case cases[] = {{"adjacent horizontal", 0, 1},
                              {"adjacent vertical", 1, 0},
                              {"diagonal", 1, 1},
                              {"2-die skip", 0, 2},
                              {"row wrap (torus)", 0, 7}};
        for (const Case &c : cases) {
            const double mm = std::abs(c.c2) * hw::Wafer::kDieWidthMm +
                              std::abs(c.r2) * hw::Wafer::kDieHeightMm;
            si.addRow({c.name, TablePrinter::fmt(mm, 1),
                       wafer.directLinkFeasible(mesh.dieAt(0, 0),
                                                mesh.dieAt(c.r2, c.c2))
                           ? "yes"
                           : "NO"});
        }
        si.print("Direct-link feasibility (50 mm SI budget)");
    }

    bench::banner("Fig. 7(c)", "compute utilisation vs wafer size");
    TablePrinter util({"Wafer", "Model", "Contiguous chains",
                       "Scattered chains", "Utilisation drop"});
    struct Grid { int rows, cols; };
    const Grid grids[] = {{4, 5}, {4, 8}, {8, 10}};
    const char *models[] = {"Llama2 7B", "Llama3 70B"};
    for (const Grid &grid : grids) {
        for (const char *name : models) {
            const hw::WaferConfig cfg =
                hw::WaferConfig::paperDefault().withGrid(grid.rows,
                                                         grid.cols);
            hw::Wafer wafer(cfg);
            const auto model = model::modelByName(name);
            const auto graph = model::ComputeGraph::transformer(model);
            parallel::ParallelSpec spec;
            spec.tatp = 8;
            // Remaining dies absorb data parallelism.
            spec.dp = std::min(model.batch, cfg.dieCount() / 8);
            if (spec.totalDegree() > cfg.dieCount() ||
                cfg.dieCount() % 8 != 0)
                continue;

            sim::TrainingSimulator good(
                wafer,
                tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
            sim::TrainingSimulator bad(
                wafer,
                tcme::MappingPolicy{tcme::MappingEngineKind::SMap});
            const auto rg = good.simulate(graph, spec);
            const auto rb = bad.simulate(graph, spec);
            if (!rg.feasible || !rb.feasible)
                continue;
            const double util_good = rg.comp_time / rg.step_time;
            const double util_bad = rb.comp_time / rb.step_time;
            char label[32];
            std::snprintf(label, sizeof(label), "%dx%d", grid.rows,
                          grid.cols);
            util.addRow({label, name, TablePrinter::fmtPct(util_good),
                         TablePrinter::fmtPct(util_bad),
                         TablePrinter::fmtPct(util_good - util_bad)});
        }
    }
    util.print("Compute utilisation: contiguous vs scattered TATP groups");
    return 0;
}
