/**
 * @file
 * Reproduces Fig. 13 (and echoes Tables I/II): overall training
 * performance and peak memory of TEMP vs the six baselines
 * (Mega/MeSP/FSDP x SMap/GMap) across the Table II models.
 */
#include "bench_util.hpp"

#include "common/stats.hpp"

#include "core/framework.hpp"

using namespace temp;

namespace {

void
printTableOne()
{
    const hw::WaferConfig cfg = hw::WaferConfig::paperDefault();
    TablePrinter t({"Module", "Parameter", "Configuration"});
    t.addRow({"Logic die", "array", std::to_string(cfg.rows) + "x" +
                                        std::to_string(cfg.cols)});
    t.addRow({"Logic die", "compute",
              TablePrinter::fmt(cfg.die.peak_flops / 1e12, 0) +
                  " TFLOPS @ 2 TFLOPS/W"});
    t.addRow({"Logic die", "SRAM",
              TablePrinter::fmt(cfg.die.sram_bytes / 1e6, 0) + " MB"});
    t.addRow({"D2D", "bandwidth",
              TablePrinter::fmt(cfg.d2d.bandwidth_bytes_per_s / 1e12, 0) +
                  " TB/s, 200 ns, 5 pJ/bit"});
    t.addRow({"DRAM", "HBM",
              TablePrinter::fmt(cfg.hbm.capacity_bytes / 1e9, 0) +
                  " GB/die, " +
                  TablePrinter::fmt(cfg.hbm.bandwidth_bytes_per_s / 1e12,
                                    0) +
                  " TB/s, 100 ns, 6 pJ/bit"});
    t.print("Table I — wafer-scale chip configuration");
}

void
printTableTwo()
{
    TablePrinter t({"Model", "Heads", "Batch", "Hidden", "Layers", "Seq"});
    for (const auto &m : model::evaluationModels()) {
        t.addRow({m.name, std::to_string(m.heads), std::to_string(m.batch),
                  std::to_string(m.hidden), std::to_string(m.layers),
                  std::to_string(m.seq)});
    }
    t.print("Table II — LLM model configurations");
}

}  // namespace

int
main()
{
    printTableOne();
    printTableTwo();
    bench::banner("Fig. 13",
                  "overall training performance vs six baselines");

    core::TempFramework fw(hw::WaferConfig::paperDefault());
    struct System
    {
        const char *label;
        baselines::BaselineKind kind;
        tcme::MappingEngineKind engine;
    };
    const System systems[] = {
        {"A:Mega+SMap", baselines::BaselineKind::Megatron1,
         tcme::MappingEngineKind::SMap},
        {"B:Mega+GMap", baselines::BaselineKind::Megatron1,
         tcme::MappingEngineKind::GMap},
        {"C:MeSP+SMap", baselines::BaselineKind::MegatronSP,
         tcme::MappingEngineKind::SMap},
        {"D:MeSP+GMap", baselines::BaselineKind::MegatronSP,
         tcme::MappingEngineKind::GMap},
        {"E:FSDP+SMap", baselines::BaselineKind::Fsdp,
         tcme::MappingEngineKind::SMap},
        {"F:FSDP+GMap", baselines::BaselineKind::Fsdp,
         tcme::MappingEngineKind::GMap},
    };

    std::vector<std::vector<double>> speedups(6);
    for (const auto &m : model::evaluationModels()) {
        const auto temp_result = fw.optimize(m);
        if (!temp_result.feasible) {
            std::printf("[%s] TEMP infeasible — skipped\n",
                        m.name.c_str());
            continue;
        }
        TablePrinter t({"System", "Norm latency", "Comp", "Exposed comm",
                        "Peak mem (GB)", "Status", "TEMP speedup"});
        const double ref = temp_result.step_time_s;

        for (std::size_t s = 0; s < 6; ++s) {
            const auto tuned =
                fw.evaluateBaseline(systems[s].kind, systems[s].engine, m);
            const auto &r = tuned.report;
            const double speedup = r.step_time / ref;
            if (!tuned.all_oom)
                speedups[s].push_back(speedup);
            t.addRow({systems[s].label,
                      TablePrinter::fmt(r.step_time / ref),
                      TablePrinter::fmt(r.comp_time / ref),
                      TablePrinter::fmt(r.exposed_comm / ref),
                      TablePrinter::fmt(r.peak_mem_bytes / 1e9, 1),
                      tuned.all_oom ? "OOM" : r.strategy_desc,
                      TablePrinter::fmtX(speedup)});
        }
        const auto &tr = temp_result.report;
        t.addRow({"T:TEMP", "1.000", TablePrinter::fmt(tr.comp_time / ref),
                  TablePrinter::fmt(tr.exposed_comm / ref),
                  TablePrinter::fmt(tr.peak_mem_bytes / 1e9, 1),
                  tr.strategy_desc + " ga=" +
                      std::to_string(tr.grad_accum),
                  "1.00x"});
        t.print(
            ("Fig. 13 — " + m.name + " (latency normalised to TEMP)")
                .c_str());
    }

    TablePrinter avg({"Baseline", "Avg TEMP speedup (non-OOM)",
                      "Paper reports"});
    const char *paper[] = {"1.69x", "1.35x", "1.38x",
                           "1.24x", "1.39x", "1.20x"};
    for (std::size_t s = 0; s < 6; ++s) {
        avg.addRow({systems[s].label,
                    speedups[s].empty()
                        ? std::string("n/a")
                        : TablePrinter::fmtX(geomean(speedups[s])),
                    paper[s]});
    }
    avg.print("Headline: average end-to-end speedup of TEMP");
    return 0;
}
