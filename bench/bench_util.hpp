/**
 * @file
 * Shared helpers for the figure-reproduction benches: banner printing
 * and normalisation utilities. Each bench binary regenerates one paper
 * table/figure and prints the corresponding rows.
 */
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace temp::bench {

/// Prints the bench banner naming the reproduced artifact.
inline void
banner(const char *figure, const char *what)
{
    std::printf("\n=====================================================\n");
    std::printf("TEMP reproduction — %s: %s\n", figure, what);
    std::printf("=====================================================\n");
}

/// Normalises a series so its maximum is 1.0 (paper-style bars).
inline std::vector<double>
normalizeToMax(const std::vector<double> &xs)
{
    double peak = 0.0;
    for (double x : xs)
        peak = std::max(peak, x);
    std::vector<double> out;
    out.reserve(xs.size());
    for (double x : xs)
        out.push_back(peak > 0.0 ? x / peak : 0.0);
    return out;
}

}  // namespace temp::bench
