/**
 * @file
 * Reproduces Fig. 14: power breakdown and power efficiency of TEMP vs
 * the six baselines. Computation dominates total power (>50%, Table I
 * energy ratings), so TEMP's power savings are modest while its power
 * *efficiency* gains mirror the throughput gains.
 */
#include "bench_util.hpp"

#include "common/stats.hpp"

#include "core/framework.hpp"

using namespace temp;

int
main()
{
    bench::banner("Fig. 14", "power breakdown and power efficiency");

    core::TempFramework fw(hw::WaferConfig::paperDefault());
    struct System
    {
        const char *label;
        baselines::BaselineKind kind;
        tcme::MappingEngineKind engine;
    };
    const System systems[] = {
        {"A:Mega+SMap", baselines::BaselineKind::Megatron1,
         tcme::MappingEngineKind::SMap},
        {"B:Mega+GMap", baselines::BaselineKind::Megatron1,
         tcme::MappingEngineKind::GMap},
        {"C:MeSP+SMap", baselines::BaselineKind::MegatronSP,
         tcme::MappingEngineKind::SMap},
        {"D:MeSP+GMap", baselines::BaselineKind::MegatronSP,
         tcme::MappingEngineKind::GMap},
        {"E:FSDP+SMap", baselines::BaselineKind::Fsdp,
         tcme::MappingEngineKind::SMap},
        {"F:FSDP+GMap", baselines::BaselineKind::Fsdp,
         tcme::MappingEngineKind::GMap},
    };

    std::vector<std::vector<double>> eff_gains(6);
    for (const auto &m : model::evaluationModels()) {
        const auto temp_result = fw.optimize(m);
        if (!temp_result.feasible)
            continue;
        const auto &tr = temp_result.report;

        TablePrinter t({"System", "Comp %", "Comm %", "Memory %",
                        "Avg power (norm)", "Power eff (norm)"});
        auto add_row = [&](const char *label, const sim::PerfReport &r,
                           bool oom) {
            const double total = r.energy.total();
            t.addRow({label,
                      TablePrinter::fmtPct(r.energy.compute_j / total),
                      TablePrinter::fmtPct(r.energy.d2d_j / total),
                      TablePrinter::fmtPct(r.energy.dram_j / total),
                      oom ? "OOM"
                          : TablePrinter::fmt(r.avg_power_w /
                                              tr.avg_power_w),
                      oom ? "OOM"
                          : TablePrinter::fmt(r.power_efficiency /
                                              tr.power_efficiency)});
        };

        for (std::size_t s = 0; s < 6; ++s) {
            const auto tuned =
                fw.evaluateBaseline(systems[s].kind, systems[s].engine, m);
            add_row(systems[s].label, tuned.report, tuned.all_oom);
            if (!tuned.all_oom && tuned.report.power_efficiency > 0.0)
                eff_gains[s].push_back(tr.power_efficiency /
                                       tuned.report.power_efficiency);
        }
        add_row("T:TEMP", tr, false);
        t.print(("Fig. 14 — " + m.name).c_str());
    }

    TablePrinter avg({"Baseline", "Avg TEMP power-eff gain",
                      "Paper reports"});
    const char *paper[] = {"1.85x", "1.45x", "1.47x",
                           "1.23x", "1.48x", "1.28x"};
    for (std::size_t s = 0; s < 6; ++s) {
        avg.addRow({systems[s].label,
                    eff_gains[s].empty()
                        ? std::string("n/a")
                        : TablePrinter::fmtX(geomean(eff_gains[s])),
                    paper[s]});
    }
    avg.print("Headline: TEMP power-efficiency gains");
    return 0;
}
