/**
 * @file
 * Reproduces Fig. 18: convergence of the optimal TATP dimension.
 *
 * For GPT-3 6.7B/76B/175B at short (2K) and long (16K) sequences, the
 * best (DP,TP,SP,TATP) tuples are found by sweeping; the paper's claim:
 * the optimal TATP degree consistently lands in 8-16 while the DP/TP/SP
 * mix shifts with scale and sequence length.
 */
#include "bench_util.hpp"

#include "sim/trainer_sim.hpp"
#include "solver/strategy_space.hpp"

using namespace temp;

int
main()
{
    bench::banner("Fig. 18", "optimal TATP dimension across scenarios");

    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    sim::TrainingSimulator sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});

    TablePrinter t({"Model", "Seq", "Best (DP,TP,SP,TATP)",
                    "TATP degree", "Gain vs TATP-free"});
    std::vector<int> best_degrees;
    for (const char *name : {"GPT-3 6.7B", "GPT-3 76B", "GPT-3 175B"}) {
        for (int seq : {2048, 16384}) {
            const auto cfg = model::modelByName(name).withSeqBatch(
                seq, seq == 2048 ? 128 : 32);
            const auto graph = model::ComputeGraph::transformer(cfg);
            solver::StrategySpaceOptions space;
            parallel::ParallelSpec best_spec;
            double best = 0.0, best_free = 0.0;
            for (const auto &spec :
                 solver::enumerateStrategies(32, cfg, space)) {
                const auto r = sim.simulate(graph, spec);
                if (!r.feasible || r.oom)
                    continue;
                if (r.throughput_tokens_per_s > best) {
                    best = r.throughput_tokens_per_s;
                    best_spec = spec;
                }
                if (spec.tatp == 1)
                    best_free =
                        std::max(best_free, r.throughput_tokens_per_s);
            }
            if (best <= 0.0)
                continue;
            char tuple[48];
            std::snprintf(tuple, sizeof(tuple), "(%d,%d,%d,%d)",
                          best_spec.dp, best_spec.tp, best_spec.sp,
                          best_spec.tatp);
            best_degrees.push_back(best_spec.tatp);
            t.addRow({name, seq == 2048 ? "2K" : "16K", tuple,
                      std::to_string(best_spec.tatp),
                      best_free > 0.0 ? TablePrinter::fmtX(best / best_free)
                                      : "n/a"});
        }
    }
    t.print("Best strategies per scenario");

    int in_sweet_spot = 0;
    for (int d : best_degrees)
        if (d >= 4 && d <= 16)
            ++in_sweet_spot;
    std::printf("\nOptimal TATP degree within the 8-16 sweet-spot band "
                "(we accept 4-16): %d/%zu scenarios (paper: all within "
                "8-16)\n",
                in_sweet_spot, best_degrees.size());
    return 0;
}
