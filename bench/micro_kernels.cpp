/**
 * @file
 * Google-benchmark micro kernels for the framework's hot paths: the
 * bidirectional orchestrator, mesh routing, collective lowering, the
 * traffic optimizer and the contention model. These quantify the cost
 * of the machinery that the DLWS search invokes thousands of times.
 */
#include <benchmark/benchmark.h>

#include "hw/topology.hpp"
#include "model/graph.hpp"
#include "model/model_zoo.hpp"
#include "net/collective.hpp"
#include "net/contention.hpp"
#include "net/route.hpp"
#include "parallel/layout.hpp"
#include "parallel/partitioner.hpp"
#include "tatp/orchestrator.hpp"
#include "tcme/optimizer.hpp"

using namespace temp;

namespace {

void
BM_OrchestratorBuildValidate(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        tatp::BidirectionalOrchestrator orch(n);
        benchmark::DoNotOptimize(orch.validate().ok);
    }
}
BENCHMARK(BM_OrchestratorBuildValidate)->Arg(8)->Arg(16)->Arg(32);

void
BM_MeshXYRoute(benchmark::State &state)
{
    hw::MeshTopology mesh(8, 8);
    net::Router router(mesh);
    int i = 0;
    for (auto _ : state) {
        const auto route =
            router.route(i % 64, (i * 17 + 13) % 64);
        benchmark::DoNotOptimize(route.hops());
        ++i;
    }
}
BENCHMARK(BM_MeshXYRoute);

void
BM_RingAllReduceLowering(benchmark::State &state)
{
    hw::MeshTopology mesh(4, 8);
    net::Router router(mesh);
    net::CollectiveScheduler sched(router);
    const auto snake = parallel::GroupLayout::snakeOrder(mesh);
    std::vector<hw::DieId> group(snake.begin(),
                                 snake.begin() + state.range(0));
    for (auto _ : state) {
        const auto s = sched.ringAllReduce(group, 256e6);
        benchmark::DoNotOptimize(s.roundCount());
    }
}
BENCHMARK(BM_RingAllReduceLowering)->Arg(8)->Arg(16)->Arg(32);

void
BM_ContentionEvaluate(benchmark::State &state)
{
    hw::MeshTopology mesh(4, 8);
    net::Router router(mesh);
    net::CollectiveScheduler sched(router);
    net::ContentionModel model(mesh, 4e12, 200e-9);
    const auto snake = parallel::GroupLayout::snakeOrder(mesh);
    const auto s = sched.ringAllReduce(
        std::vector<hw::DieId>(snake.begin(), snake.end()), 256e6);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.evaluateSequence(s).time_s);
}
BENCHMARK(BM_ContentionEvaluate);

void
BM_TrafficOptimizerPhase(benchmark::State &state)
{
    hw::MeshTopology mesh(4, 8);
    net::Router router(mesh);
    tcme::TrafficOptimizer opt(router);
    // A congested phase: many parallel row flows through column 3-4.
    std::vector<net::Flow> base;
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 3; ++c) {
            net::Flow f;
            f.src = mesh.dieAt(r, c);
            f.dst = mesh.dieAt(r, 5 + c % 3);
            f.bytes = 64e6;
            f.route = router.route(f.src, f.dst);
            f.tag = r;
            base.push_back(f);
        }
    }
    for (auto _ : state) {
        auto flows = base;
        benchmark::DoNotOptimize(opt.optimizePhase(flows).reroutes);
    }
}
BENCHMARK(BM_TrafficOptimizerPhase);

void
BM_PartitionerAnalyze(benchmark::State &state)
{
    hw::MeshTopology mesh(4, 8);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    parallel::ParallelSpec spec;
    spec.dp = 2;
    spec.tp = 2;
    spec.tatp = 8;
    parallel::GroupLayout layout(mesh, spec);
    parallel::Partitioner part;
    for (auto _ : state) {
        for (const auto &op : graph.ops())
            benchmark::DoNotOptimize(
                part.analyze(op, layout).fwd_flops_per_die);
    }
}
BENCHMARK(BM_PartitionerAnalyze);

}  // namespace

BENCHMARK_MAIN();
