/**
 * @file
 * Kernel microbench: the three data-oriented inner loops carved out of
 * the cost stack, each timed against its reference scalar twin.
 *
 * Sections, each emitted as a BENCH_JSON line:
 *
 *  - deposit: per-phase load accumulation over a synthetic flow mix,
 *    the pre-PR machinery (marked flags + a touched list the drain
 *    sorted every phase + a reset walk) vs the fused epoch-stamped
 *    kernel (set-or-add, no sort, no reset pass);
 *  - drain_scan: the contention bottleneck search over epoch-stamped
 *    links (L1-resident, like real fabrics), no-autovec scalar twin vs
 *    the vector path;
 *  - breakdown_reduce: the per-layer field sums over ~4K breakdown
 *    cells, scalar twin vs the lane-per-accumulator vector path.
 *
 * Acceptance bars (non-zero exit on failure, CI runs this binary):
 *
 *  - every SIMD/SoA path is never slower than its scalar twin
 *    (speedup >= 0.9, the 0.1 slack absorbs timer noise);
 *  - on a vector-capable build (TEMP_SIMD on AND the TU compiled with
 *    AVX2/AVX-512), at least 2 of the 3 sections reach >= 1.5x.
 *    Default -O2 builds (SSE2 baseline) only enforce never-slower.
 *
 * Every section also asserts the two paths produce bit-identical
 * results before timing them — a bench that got faster by diverging
 * is a failure, not a win.
 */
#include "bench_util.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "common/kernels.hpp"
#include "cost/breakdown_reduce.hpp"

using namespace temp;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Paired
{
    double a = 1e300;
    double b = 1e300;
};

/// Interleaved best-of-N wall times of `fa()` and `fb()`. Alternating
/// the two paths inside each trial keeps clock-frequency drift on a
/// shared single-core box from landing entirely on whichever path was
/// timed second — drift shifts both bests together, so the ratio holds.
template <typename FnA, typename FnB>
Paired
pairedBestOf(int trials, FnA &&fa, FnB &&fb)
{
    Paired best;
    for (int t = 0; t < trials; ++t) {
        double t0 = now();
        fa();
        best.a = std::min(best.a, now() - t0);
        t0 = now();
        fb();
        best.b = std::min(best.b, now() - t0);
    }
    return best;
}

struct FlowMix
{
    // SoA shape mirroring net::FlowSoa.
    std::vector<double> bytes;
    std::vector<std::uint32_t> link_begin;
    std::vector<std::int32_t> links;
};

/// Synthetic ragged flow mix: route lengths 2..16, ~6% link revisits
/// (waypoint detours), link ids spread over the whole array.
FlowMix
makeFlows(int n_flows, int n_links, std::mt19937_64 &rng)
{
    std::uniform_int_distribution<int> len(2, 16);
    std::uniform_int_distribution<std::int32_t> link(0, n_links - 1);
    std::uniform_real_distribution<double> bytes(1e3, 1e7);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    FlowMix mix;
    mix.link_begin.push_back(0);
    for (int f = 0; f < n_flows; ++f) {
        mix.bytes.push_back(bytes(rng));
        const int n = len(rng);
        for (int k = 0; k < n; ++k) {
            if (static_cast<std::uint32_t>(mix.links.size()) >
                    mix.link_begin.back() &&
                unit(rng) < 0.06)
                mix.links.push_back(mix.links.back());  // revisit
            else
                mix.links.push_back(link(rng));
        }
        mix.link_begin.push_back(
            static_cast<std::uint32_t>(mix.links.size()));
    }
    return mix;
}

}  // namespace

int
main()
{
    bench::banner("Kernel micropath",
                  "fused deposit, drain scan, breakdown reduce");
#if TEMP_SIMD_ENABLED && (defined(__AVX2__) || defined(__AVX512F__))
    const bool vector_build = true;
#else
    const bool vector_build = false;
#endif
    std::printf("TEMP_SIMD=%d, vector-capable build: %s\n",
                TEMP_SIMD_ENABLED, vector_build ? "yes" : "no");

    std::mt19937_64 rng(20260808);
    const int trials = 7;
    bool ok = true;
    double speedups[3] = {0.0, 0.0, 0.0};

    // --- deposit: touched-sort machinery vs fused epoch kernel ---------
    {
        const int n_links = 4096;
        const int n_flows = 4096;
        const int reps = 200;
        const FlowMix mix = makeFlows(n_flows, n_links, rng);

        // Pre-PR phase accumulation: marked flags, a touched list the
        // deterministic drain had to sort every phase, and a reset walk.
        std::vector<double> loads_a(n_links, 0.0);
        std::vector<std::uint8_t> marked(n_links, 0);
        std::vector<std::int32_t> touched;
        touched.reserve(n_links);
        auto old_phase = [&] {
            for (int f = 0; f < n_flows; ++f) {
                const std::uint32_t b = mix.link_begin[f];
                const std::uint32_t e = mix.link_begin[f + 1];
                const double fb = mix.bytes[f];
                for (std::uint32_t k = b; k < e; ++k) {
                    const std::int32_t l = mix.links[k];
                    if (!marked[l]) {
                        marked[l] = 1;
                        touched.push_back(l);
                    }
                    loads_a[l] += fb;
                }
            }
            std::sort(touched.begin(), touched.end());
        };
        auto old_reset = [&] {
            for (const std::int32_t l : touched) {
                loads_a[l] = 0.0;
                marked[l] = 0;
            }
            touched.clear();
        };

        std::vector<double> loads_b(n_links, 0.0);
        std::vector<std::uint32_t> stamp(n_links, 0);
        std::uint32_t epoch = 0;
        auto new_phase = [&] {
            ++epoch;
            for (int f = 0; f < n_flows; ++f) {
                const std::uint32_t b = mix.link_begin[f];
                const std::uint32_t e = mix.link_begin[f + 1];
                kernels::depositLinks(loads_b.data(), stamp.data(), epoch,
                                      mix.links.data() + b,
                                      static_cast<int>(e - b),
                                      mix.bytes[f]);
            }
        };

        // Both machineries must accumulate identical per-phase loads.
        old_phase();
        new_phase();
        bool same = true;
        for (const std::int32_t l : touched)
            same = same && std::memcmp(&loads_a[l], &loads_b[l],
                                       sizeof(double)) == 0 &&
                   stamp[l] == epoch;
        if (!same) {
            std::printf("FAIL: deposit machineries diverged\n");
            ok = false;
        }
        old_reset();

        const Paired t = pairedBestOf(
            trials,
            [&] {
                for (int r = 0; r < reps; ++r) {
                    old_phase();
                    old_reset();
                }
            },
            [&] {
                for (int r = 0; r < reps; ++r)
                    new_phase();
            });
        const double old_s = t.a;
        const double fused_s = t.b;
        const double deposits =
            static_cast<double>(mix.links.size()) * reps;
        speedups[0] = fused_s > 0.0 ? old_s / fused_s : 0.0;
        std::printf("Deposit: touched-sort %.0f Mdep/s, epoch-fused %.0f "
                    "Mdep/s (x%.2f)\n",
                    deposits / old_s / 1e6, deposits / fused_s / 1e6,
                    speedups[0]);
        std::printf("BENCH_JSON {\"bench\":\"micro_kernels\","
                    "\"section\":\"deposit\",\"flows\":%d,\"links\":%d,"
                    "\"touched_sort_deposits_per_s\":%.3e,"
                    "\"epoch_fused_deposits_per_s\":%.3e,"
                    "\"speedup\":%.2f}\n",
                    n_flows, n_links, deposits / old_s,
                    deposits / fused_s, speedups[0]);
    }

    // --- drain scan: scalar twin vs vector path ------------------------
    // Cache-resident link counts (real wafer fabrics have hundreds of
    // links), rotating through enough distinct load patterns that the
    // branch predictor cannot memorize the scalar twin's touched/
    // untouched sequence — every real phase evaluation sees a fresh
    // pattern. A single huge array would instead measure allocation-
    // address luck (4K-aliasing swings 2x run to run).
    {
        const int n_links = 512;
        const int n_sets = 16;
        const int reps = 32000;
        const std::uint32_t epoch = 7;
        std::uniform_real_distribution<double> load(0.0, 1e9);
        std::uniform_real_distribution<double> bw(1e9, 4e9);
        std::uniform_real_distribution<double> unit(0.0, 1.0);
        std::vector<std::vector<double>> loads(n_sets);
        std::vector<std::vector<double>> bandwidth(n_sets);
        std::vector<std::vector<std::uint32_t>> stamps(n_sets);
        for (int s = 0; s < n_sets; ++s) {
            loads[s].resize(n_links);
            bandwidth[s].resize(n_links);
            stamps[s].resize(n_links);
            for (int i = 0; i < n_links; ++i) {
                const bool touched = unit(rng) < 0.6;
                stamps[s][i] = touched ? epoch : epoch - 1;
                loads[s][i] = load(rng);
                bandwidth[s][i] = bw(rng);
            }
        }

        for (int s = 0; s < n_sets; ++s) {
            const kernels::MaxDrain scalar_r =
                kernels::maxDrainArgmaxScalar(loads[s].data(),
                                              stamps[s].data(), epoch,
                                              bandwidth[s].data(),
                                              n_links);
            const kernels::MaxDrain simd_r = kernels::maxDrainArgmaxSimd(
                loads[s].data(), stamps[s].data(), epoch,
                bandwidth[s].data(), n_links);
            // Field-wise: memcmp over the struct would read padding.
            if (std::memcmp(&scalar_r.worst, &simd_r.worst,
                            sizeof(double)) != 0 ||
                scalar_r.link != simd_r.link ||
                std::memcmp(&scalar_r.link_load, &simd_r.link_load,
                            sizeof(double)) != 0 ||
                scalar_r.dead_link != simd_r.dead_link) {
                std::printf("FAIL: drain scan scalar/simd diverged\n");
                ok = false;
            }
        }

        double sink = 0.0;
        const Paired t = pairedBestOf(
            trials,
            [&] {
                for (int r = 0; r < reps; ++r) {
                    const int s = r & (n_sets - 1);
                    sink += kernels::maxDrainArgmaxScalar(
                                loads[s].data(), stamps[s].data(), epoch,
                                bandwidth[s].data(), n_links)
                                .worst;
                }
            },
            [&] {
                for (int r = 0; r < reps; ++r) {
                    const int s = r & (n_sets - 1);
                    sink += kernels::maxDrainArgmaxSimd(
                                loads[s].data(), stamps[s].data(), epoch,
                                bandwidth[s].data(), n_links)
                                .worst;
                }
            });
        const double scalar_s = t.a;
        const double simd_s = t.b;
        const double scanned = static_cast<double>(n_links) * reps;
        speedups[1] = simd_s > 0.0 ? scalar_s / simd_s : 0.0;
        std::printf("Drain scan: scalar %.0f Mlink/s, simd %.0f Mlink/s "
                    "(x%.2f, sink %.3g)\n",
                    scanned / scalar_s / 1e6, scanned / simd_s / 1e6,
                    speedups[1], sink);
        std::printf("BENCH_JSON {\"bench\":\"micro_kernels\","
                    "\"section\":\"drain_scan\",\"links\":%d,"
                    "\"scalar_links_per_s\":%.3e,"
                    "\"simd_links_per_s\":%.3e,\"speedup\":%.2f}\n",
                    n_links, scanned / scalar_s, scanned / simd_s,
                    speedups[1]);
    }

    // --- breakdown reduce: scalar twin vs lane-per-field path ----------
    {
        const int n_cells = 4096;
        const int reps = 2000;
        std::uniform_real_distribution<double> v(0.0, 1.0);
        std::vector<cost::OpCostBreakdown> cells(n_cells);
        for (cost::OpCostBreakdown &c : cells) {
            c.fwd_time = v(rng);
            c.bwd_time = v(rng);
            c.comp_time = v(rng);
            c.collective_time = v(rng);
            c.stream_comm_time = v(rng);
            c.step_comm_time = v(rng);
            c.exposed_comm = v(rng);
            c.tail_latency = v(rng);
            c.flops = v(rng) * 1e12;
            c.dram_bytes = v(rng) * 1e9;
            c.d2d_link_bytes = v(rng) < 0.8 ? v(rng) * 1e9 : 0.0;
            c.bw_utilization = v(rng) < 0.9 ? v(rng) : 0.0;
            c.feasible = v(rng) < 0.95;
        }

        const cost::BreakdownSums scalar_r =
            cost::reduceBreakdownsScalar(cells);
        const cost::BreakdownSums simd_r =
            cost::reduceBreakdownsSimd(cells);
        if (std::memcmp(&scalar_r, &simd_r, sizeof scalar_r) != 0) {
            std::printf("FAIL: breakdown reduce scalar/simd diverged\n");
            ok = false;
        }
        std::vector<double> tot_a(n_cells);
        std::vector<double> tot_b(n_cells);
        cost::breakdownTotalsScalar(cells, tot_a.data());
        cost::breakdownTotalsSimd(cells, tot_b.data());
        if (std::memcmp(tot_a.data(), tot_b.data(),
                        tot_a.size() * sizeof(double)) != 0) {
            std::printf("FAIL: breakdown totals scalar/simd diverged\n");
            ok = false;
        }

        double sink = 0.0;
        const Paired t = pairedBestOf(
            trials,
            [&] {
                for (int r = 0; r < reps; ++r) {
                    sink += cost::reduceBreakdownsScalar(cells).wall;
                    cost::breakdownTotalsScalar(cells, tot_a.data());
                }
            },
            [&] {
                for (int r = 0; r < reps; ++r) {
                    sink += cost::reduceBreakdownsSimd(cells).wall;
                    cost::breakdownTotalsSimd(cells, tot_b.data());
                }
            });
        const double scalar_s = t.a;
        const double simd_s = t.b;
        const double reduced = static_cast<double>(n_cells) * reps;
        speedups[2] = simd_s > 0.0 ? scalar_s / simd_s : 0.0;
        std::printf("Breakdown reduce: scalar %.0f Mcell/s, simd %.0f "
                    "Mcell/s (x%.2f, sink %.3g)\n",
                    reduced / scalar_s / 1e6, reduced / simd_s / 1e6,
                    speedups[2], sink);
        std::printf("BENCH_JSON {\"bench\":\"micro_kernels\","
                    "\"section\":\"breakdown_reduce\",\"cells\":%d,"
                    "\"scalar_cells_per_s\":%.3e,"
                    "\"simd_cells_per_s\":%.3e,\"speedup\":%.2f}\n",
                    n_cells, reduced / scalar_s, reduced / simd_s,
                    speedups[2]);
    }

    // --- acceptance bars (CI smoke) -------------------------------------
    const char *names[3] = {"deposit", "drain_scan", "breakdown_reduce"};
    for (int i = 0; i < 3; ++i) {
        if (speedups[i] < 0.9) {
            std::printf("FAIL: %s vector path x%.2f slower than its "
                        "scalar twin\n",
                        names[i], speedups[i]);
            ok = false;
        }
    }
    if (vector_build) {
        int fast = 0;
        for (double s : speedups)
            fast += s >= 1.5 ? 1 : 0;
        if (fast < 2) {
            std::printf("FAIL: only %d of 3 kernels reached 1.5x on a "
                        "vector-capable build (x%.2f, x%.2f, x%.2f)\n",
                        fast, speedups[0], speedups[1], speedups[2]);
            ok = false;
        }
    }
    if (!ok)
        return 1;
    std::printf("micro_kernels acceptance bars passed\n");
    return 0;
}
