/**
 * @file
 * What-if ablation for the paper's Sec. III-B argument: "one may
 * naturally consider physically adding a torus link" — quantifies why
 * that loses to TATP.
 *
 * A wafer-scale wrap link exceeds the 50 mm signal-integrity budget
 * (the 4x8 wafer's row wrap is ~175 mm), so it needs forward error
 * correction; the paper cites FEC transmission latency of 210 ns,
 * ~14x a normal hop [97]. We compare:
 *   (1) naive TSPP on the plain mesh      (7-hop wrap, no FEC),
 *   (2) naive TSPP on a hypothetical FEC torus (1-hop wrap, 14x
 *       latency, derated long-trace bandwidth),
 *   (3) TATP's bidirectional relay on the plain mesh.
 */
#include "bench_util.hpp"

#include "hw/config.hpp"
#include "tatp/chain_mapper.hpp"
#include "tatp/executor.hpp"

using namespace temp;

int
main()
{
    bench::banner("Sec. III-B what-if",
                  "adding a torus wrap link vs TATP");

    hw::MeshTopology line(1, 8);
    tatp::ChainMapper mapper(line);
    const std::vector<hw::DieId> dies{0, 1, 2, 3, 4, 5, 6, 7};
    const tatp::RingInfo mesh_ring = mapper.analyzeRing(dies);
    const tatp::ChainInfo chain = mapper.analyzeChain(dies);

    const hw::D2dConfig d2d;
    tatp::TatpExecutor exec(d2d);

    // FEC torus wrap: the paper cites 210 ns (14x) transmission latency;
    // long on-wafer traces also run the SerDes at reduced rate — we
    // grant it half the nominal bandwidth, which is generous.
    const double fec_latency = 210e-9;
    const double fec_bandwidth = 0.5 * d2d.bandwidth_bytes_per_s;

    TablePrinter t({"Design", "Wrap path", "Per-round comm",
                    "Pass time (8 rounds)", "vs TATP"});
    const int rounds = 8;
    const double bytes = 64e6;
    const double flops = 1e6;  // comm-bound regime isolates the fabric
    const double rate = hw::DieConfig{}.peak_flops;

    const tatp::TatpTiming tatp_t =
        exec.timePass(flops, bytes, rounds, chain, rate);
    const tatp::TatpTiming mesh_naive =
        exec.timeNaiveRingPass(flops, bytes, rounds, mesh_ring, rate);

    // Hypothetical FEC torus: every hop is physical-1, but the wrap link
    // gates each round at FEC latency and derated bandwidth.
    const double torus_round =
        std::max(bytes / d2d.effectiveBandwidth(bytes) + d2d.latency_s,
                 bytes / fec_bandwidth + fec_latency) +
        tatp::TatpExecutor::kRoundOverheadS;
    const double torus_time = rounds * torus_round;

    t.addRow({"naive TSPP, mesh", "7 hops (store&fwd)",
              TablePrinter::fmt(mesh_naive.round_time_s * 1e6, 1) + " us",
              TablePrinter::fmt(mesh_naive.time_s * 1e6, 1) + " us",
              TablePrinter::fmtX(mesh_naive.time_s / tatp_t.time_s)});
    t.addRow({"naive TSPP, FEC torus", "1 hop (FEC, 210ns, bw/2)",
              TablePrinter::fmt(torus_round * 1e6, 1) + " us",
              TablePrinter::fmt(torus_time * 1e6, 1) + " us",
              TablePrinter::fmtX(torus_time / tatp_t.time_s)});
    t.addRow({"TATP, mesh (no wrap needed)", "1 hop",
              TablePrinter::fmt(tatp_t.round_time_s * 1e6, 1) + " us",
              TablePrinter::fmt(tatp_t.time_s * 1e6, 1) + " us", "1.00x"});
    t.print("Degree-8 stream pass, 64 MB sub-tensors (comm-bound)");

    std::printf("\nEven granting the impossible torus link (SI forbids "
                ">50 mm traces), FEC and derated bandwidth leave it "
                "%.2fx slower than TATP's relay — and TATP needs no new "
                "hardware.\n",
                torus_time / tatp_t.time_s);
    return 0;
}
