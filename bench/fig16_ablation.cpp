/**
 * @file
 * Reproduces Fig. 16: ablation of TEMP's components.
 *
 * Base = FSDP+SMap (trains every model without OOM); +TATP enables the
 * tensor-stream partition in the search but keeps the naive mapper;
 * +TATP+TCME is the full framework. Gains grow with model size.
 */
#include "bench_util.hpp"

#include "common/stats.hpp"

#include "core/framework.hpp"

using namespace temp;

int
main()
{
    bench::banner("Fig. 16", "ablation: Base -> +TATP -> +TATP+TCME");

    core::TempFramework tcme_fw(hw::WaferConfig::paperDefault());
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    sim::TrainingSimulator smap_sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::SMap});

    TablePrinter t({"Model", "Base (FSDP+SMap)", "+TATP", "+TATP+TCME",
                    "TATP gain", "TCME gain"});
    std::vector<double> tatp_gains, tcme_gains;
    for (const auto &m : model::evaluationModels()) {
        const auto base = tcme_fw.evaluateBaseline(
            baselines::BaselineKind::Fsdp, tcme::MappingEngineKind::SMap,
            m);
        // Full TEMP search once; "+TATP" evaluates the found strategy
        // under the naive SMap mapping (no topology-aware chains, no
        // contention optimisation), "+TATP+TCME" under the full engine.
        const auto full = tcme_fw.optimize(m);
        if (base.all_oom || !full.feasible)
            continue;
        const auto graph = model::ComputeGraph::transformer(m);
        const auto plus_tatp_report =
            smap_sim.simulate(graph, full.per_op_specs);
        if (!plus_tatp_report.feasible)
            continue;

        const double base_tput = 1.0 / base.report.step_time;
        const double tatp_tput = 1.0 / plus_tatp_report.step_time;
        const double full_tput = 1.0 / full.step_time_s;
        tatp_gains.push_back(tatp_tput / base_tput);
        tcme_gains.push_back(full_tput / tatp_tput);
        t.addRow({m.name, "1.00",
                  TablePrinter::fmt(tatp_tput / base_tput),
                  TablePrinter::fmt(full_tput / base_tput),
                  TablePrinter::fmtX(tatp_tput / base_tput),
                  TablePrinter::fmtX(full_tput / tatp_tput)});
    }
    t.print("Normalised throughput (base = 1.0)");

    std::printf("\nAverage +TATP gain:      %.2fx (paper: 1.21x)\n",
                geomean(tatp_gains));
    std::printf("Average +TCME extra gain: %.2fx (paper: 1.14x)\n",
                geomean(tcme_gains));
    return 0;
}
