/**
 * @file
 * Ablation for the DLWS design choice of driving the search with the
 * DNN cost surrogate (Sec. VII-A): only a fraction of the (operator,
 * strategy) cost matrix is measured with the simulator; the rest is
 * predicted. The paper reports 100-1000x faster search at ~4% error;
 * here we verify the *quality* is preserved (the found strategy's true
 * simulated step time) while the exact-measurement count shrinks.
 */
#include "bench_util.hpp"

#include "sim/trainer_sim.hpp"
#include "solver/dls_solver.hpp"

using namespace temp;

int
main()
{
    bench::banner("Sec. VII-A ablation",
                  "surrogate-driven vs simulator-driven DLS");

    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    sim::TrainingSimulator sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});

    TablePrinter t({"Model", "Mode", "Matrix measurements",
                    "Search time (s)", "Found step (ms)",
                    "Quality vs exact"});
    for (const char *name : {"GPT-3 6.7B", "Llama3 70B"}) {
        const auto graph =
            model::ComputeGraph::transformer(model::modelByName(name));

        solver::SolverConfig exact_cfg;
        const auto exact = solver::DlsSolver(sim, exact_cfg).solve(graph);
        if (!exact.feasible)
            continue;

        for (double fraction : {0.5, 0.25}) {
            solver::SolverConfig cfg;
            cfg.use_surrogate = true;
            cfg.surrogate_sample_fraction = fraction;
            const auto approx = solver::DlsSolver(sim, cfg).solve(graph);
            if (!approx.feasible)
                continue;
            char mode[48];
            std::snprintf(mode, sizeof(mode), "surrogate (%.0f%% cells)",
                          100.0 * fraction);
            t.addRow({name, mode, std::to_string(approx.matrix_measurements),
                      TablePrinter::fmt(approx.search_time_s, 2),
                      TablePrinter::fmt(approx.step_time_s * 1e3, 1),
                      TablePrinter::fmt(approx.step_time_s /
                                        exact.step_time_s)});
        }
        t.addRow({name, "exact simulator",
                  std::to_string(exact.matrix_measurements),
                  TablePrinter::fmt(exact.search_time_s, 2),
                  TablePrinter::fmt(exact.step_time_s * 1e3, 1), "1.000"});
    }
    t.print("Search quality under surrogate cost matrices");
    std::printf("\nQuality ~1.0 means the surrogate-driven search finds "
                "strategies as good as exhaustive measurement (the GA's "
                "final fitness always uses the true simulator). Our "
                "analytic cell measurements cost microseconds, so the "
                "MLP fit dominates here; against the paper's "
                "minutes-per-sample simulator the same reduction is the "
                "100-1000x win.\n");
    return 0;
}
