/**
 * @file
 * Reproduces the Fig. 5 challenge quantifications:
 *  (a) the 7x physical-hop disparity of a logical ring laid out on a
 *      linear chain of 8 dies (tail latency);
 *  (b) the >2x slowdown when two transfers contend for one link.
 */
#include "bench_util.hpp"

#include "hw/config.hpp"
#include "net/collective.hpp"
#include "net/contention.hpp"
#include "tatp/chain_mapper.hpp"
#include "tatp/executor.hpp"

using namespace temp;

int
main()
{
    bench::banner("Fig. 5(a)", "tail latency of naive TSPP on dies 0-7");
    hw::MeshTopology line(1, 8);
    tatp::ChainMapper mapper(line);
    std::vector<hw::DieId> dies{0, 1, 2, 3, 4, 5, 6, 7};
    const tatp::RingInfo ring = mapper.analyzeRing(dies);
    const tatp::ChainInfo chain = mapper.analyzeChain(dies);

    TablePrinter hops({"Transfer", "Logical hops", "Physical hops",
                       "Norm latency"});
    hops.addRow({"adjacent (Di->Di+1)", "1", "1", "1.0x"});
    hops.addRow({"wrap (D7->D0)", "1",
                 std::to_string(ring.wrap_hops),
                 TablePrinter::fmtX(static_cast<double>(ring.wrap_hops),
                                    1)});
    hops.print("Logical-vs-physical hop disparity");

    tatp::TatpExecutor exec(hw::D2dConfig{});
    const double flops = 1e6;  // comm-bound regime
    const double bytes = 64e6;
    const double rate = hw::DieConfig{}.peak_flops;
    const tatp::TatpTiming naive =
        exec.timeNaiveRingPass(flops, bytes, 8, ring, rate);
    const tatp::TatpTiming tatp_t =
        exec.timePass(flops, bytes, 8, chain, rate);
    std::printf("\nNaive TSPP pass:  %.1f us  (wrap store-and-forward)\n",
                naive.time_s * 1e6);
    std::printf("TATP pass:        %.1f us  (bidirectional 1-hop relay)\n",
                tatp_t.time_s * 1e6);
    std::printf("Tail-latency inflation eliminated: %.1fx -> 1.0x\n",
                naive.time_s / tatp_t.time_s);

    bench::banner("Fig. 5(b)", "traffic contention on a shared link");
    hw::MeshTopology mesh(2, 4);
    net::Router router(mesh);
    net::ContentionModel model(mesh, hw::D2dConfig{}.bandwidth_bytes_per_s,
                               hw::D2dConfig{}.latency_s);

    net::Flow a;
    a.src = mesh.dieAt(0, 0);
    a.dst = mesh.dieAt(0, 2);
    a.bytes = 256e6;
    a.route = router.route(a.src, a.dst);
    net::Flow b;
    b.src = mesh.dieAt(0, 1);
    b.dst = mesh.dieAt(0, 3);
    b.bytes = 256e6;
    b.route = router.route(b.src, b.dst);

    const double solo = model.evaluate({a}).time_s;
    const double contended = model.evaluate({a, b}).time_s;
    TablePrinter contention({"Scenario", "Transfer time", "Slowdown"});
    contention.addRow({"contention-free",
                       TablePrinter::fmt(solo * 1e6, 1) + " us", "1.0x"});
    contention.addRow({"two flows share link D1->D2",
                       TablePrinter::fmt(contended * 1e6, 1) + " us",
                       TablePrinter::fmtX(contended / solo)});
    contention.print("Link contention (Fig. 5b)");
    std::printf("\nPaper claim: contention increases transfer latency by "
                ">2x vs contention-free. Measured: %.2fx (bandwidth "
                "term exactly 2x; latency overlaps)\n",
                contended / solo);
    return 0;
}
