/**
 * @file
 * temp_cli: the one driver for the TEMP service layer. Every workflow
 * the bench/example binaries hand-rolled is a subcommand routed
 * through TempService, so repeated invocations of one process share
 * cached frameworks, and --json turns any result into one
 * machine-consumable document on stdout.
 *
 *   temp_cli <command> [model] [options]
 *
 * commands:
 *   optimize    full DLWS pipeline (strategy space -> DP -> GA -> sim)
 *   baseline    tune a baseline scheme (--kind, --engine)
 *   faults      degraded-wafer re-optimisation (--link-rate, ...)
 *   multiwafer  pipeline plan on a wafer pod (--wafers, --pp, ...)
 *   sweep       ranked explicit-strategy line-up plus the solver pick
 *   cache-stats run an optimize to warm the memo stack, then report
 *               every cache layer's governance counters (entries,
 *               bytes, hits, misses, evictions); pair with --opts
 *               budget keys (eval.cache.max_entries, ...) to watch
 *               bounded eviction live
 *   serve       network front end: framed-RPC + HTTP/1.1 on one port,
 *               with in-flight coalescing, admission control and
 *               per-tenant fair dequeue; SIGINT drains gracefully
 *               (and writes the persist snapshot when configured)
 *   request     run one request-JSON document: parse, then execute
 *               in-process or (--connect HOST:PORT) against a server;
 *               --retries N retries a refused connection under
 *               jittered exponential backoff
 *   scenario    replay a timeline FILE (a kind:scenario request
 *               document) deterministically: fault storms, repairs,
 *               model switches, pod churn — each event re-solved
 *               warm-seeded with an explicit degraded-answer policy
 *               (see src/scenario/README.md)
 *   snapshot    persistent memo tier: `snapshot save FILE [model]`
 *               warms the memo stack with one solve and writes a
 *               snapshot; `snapshot load FILE [model]` warm-starts a
 *               fresh process from it and re-solves (zero new matrix
 *               measurements on a matching snapshot); `snapshot info
 *               FILE` describes a snapshot without executing anything
 *
 * model: a zoo name ("GPT-3 6.7B") or a path/to/model.conf; options:
 *   --wafer FILE.conf   custom wafer (default: the Table I 4x8)
 *   --opts FILE.conf    framework options (policy, solver.*, training.*,
 *                       persist.path, persist.save_on_exit, ...)
 *   --load FILE         warm-start the service from a snapshot first
 *   --save FILE         write a snapshot after the command runs
 *   --json              machine-readable output
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/request_io.hpp"
#include "api/serialize.hpp"
#include "api/service.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "core/config_io.hpp"
#include "persist/snapshot.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace temp;

namespace {

struct CliArgs
{
    std::string command;
    std::string model;
    std::string wafer_file;
    std::string opts_file;
    std::string refiner;  ///< level-2 engine override (empty = config)
    bool json = false;
    // baseline
    std::string kind = "mesp";
    std::string engine = "tcme";
    // faults
    double link_rate = 0.15;
    double core_rate = 0.0;
    std::uint64_t seed = 11;
    // multiwafer
    int wafers = 6;
    int pp = 0;  ///< 0 = wafer count
    int micro = 8;
    int dp = 2, tp = 1, sp = 1, tatp = 16;
    // serve / request
    std::string host = "127.0.0.1";
    int port = 7411;
    int workers = 2;
    int max_queue = 64;
    std::string request_file;  ///< "" or "-" = stdin
    std::string connect;       ///< HOST:PORT ("" = run in-process)
    int retries = 0;           ///< --connect dial retries (0 = off)
    /// --deadline-ms: wall-clock budget per solve (and, for `serve`,
    /// the per-request queue deadline). -1 = unset, config wins.
    int deadline_ms = -1;
    // scenario
    std::string scenario_file;  ///< timeline document (positional)
    // snapshot / persist
    std::string sub;            ///< snapshot verb (save | load | info)
    std::string snapshot_file;  ///< snapshot subcommand file
    std::string load_path;      ///< --load: warm-start before the run
    std::string save_path;      ///< --save: snapshot after the run
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <command> [model] [options]\n\n"
        "commands:\n"
        "  optimize    full DLWS pipeline on one model\n"
        "  baseline    tune a baseline scheme "
        "(--kind mega|mesp|fsdp, --engine smap|gmap|tcme)\n"
        "  faults      degraded-wafer re-optimisation "
        "(--link-rate R, --core-rate R, --seed N)\n"
        "  multiwafer  pipeline plan on a wafer pod "
        "(--wafers N, --pp N, --micro N, --dp/--tp/--sp/--tatp N)\n"
        "  sweep       ranked explicit-strategy line-up + solver pick\n"
        "  cache-stats optimize once, then report every cache "
        "layer's counters\n"
        "  serve       framed-RPC/HTTP front end "
        "(--host A, --port N, --workers N, --max-queue N)\n"
        "  request     run one request-JSON document "
        "(--file F|stdin, --connect HOST:PORT, --retries N)\n"
        "  scenario    replay a timeline FILE "
        "(a kind:scenario request document)\n"
        "  snapshot    persistent memo tier: "
        "snapshot save|load|info FILE [model]\n\n"
        "model: zoo name (e.g. \"GPT-3 6.7B\") or path/to/model.conf\n"
        "options: --wafer FILE.conf, --opts FILE.conf,\n"
        "  --refiner none|genetic|annealing|beamtabu|exact|portfolio\n"
        "    (level-2 search engine),\n"
        "  --deadline-ms N (wall-clock budget per solve; for serve,\n"
        "    also the per-request queue deadline),\n"
        "  --load FILE (warm-start from a snapshot), --save FILE,\n"
        "  --json\n",
        argv0);
    return 1;
}

bool
parseArgs(int argc, char **argv, CliArgs *args)
{
    if (argc < 2)
        return false;
    args->command = argv[1];
    int positional = 0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--json")
            args->json = true;
        else if (arg == "--wafer")
            args->wafer_file = value();
        else if (arg == "--opts")
            args->opts_file = value();
        else if (arg == "--refiner")
            args->refiner = value();
        else if (arg == "--kind")
            args->kind = value();
        else if (arg == "--engine")
            args->engine = value();
        else if (arg == "--link-rate")
            args->link_rate = std::atof(value());
        else if (arg == "--core-rate")
            args->core_rate = std::atof(value());
        else if (arg == "--seed")
            args->seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--wafers")
            args->wafers = std::atoi(value());
        else if (arg == "--pp")
            args->pp = std::atoi(value());
        else if (arg == "--micro")
            args->micro = std::atoi(value());
        else if (arg == "--dp")
            args->dp = std::atoi(value());
        else if (arg == "--tp")
            args->tp = std::atoi(value());
        else if (arg == "--sp")
            args->sp = std::atoi(value());
        else if (arg == "--tatp")
            args->tatp = std::atoi(value());
        else if (arg == "--host")
            args->host = value();
        else if (arg == "--port")
            args->port = std::atoi(value());
        else if (arg == "--workers")
            args->workers = std::atoi(value());
        else if (arg == "--max-queue")
            args->max_queue = std::atoi(value());
        else if (arg == "--file")
            args->request_file = value();
        else if (arg == "--connect")
            args->connect = value();
        else if (arg == "--retries")
            args->retries = std::atoi(value());
        else if (arg == "--deadline-ms")
            args->deadline_ms = std::atoi(value());
        else if (arg == "--load")
            args->load_path = value();
        else if (arg == "--save")
            args->save_path = value();
        else if (!arg.empty() && arg[0] == '-')
            return false;
        else {
            // The snapshot subcommand takes two extra positionals
            // (verb, file) ahead of the usual optional model.
            const int slot = positional++;
            if (args->command == "snapshot") {
                if (slot == 0)
                    args->sub = arg;
                else if (slot == 1)
                    args->snapshot_file = arg;
                else if (slot == 2)
                    args->model = arg;
                else
                    return false;
            } else if (args->command == "scenario") {
                // The scenario positional is the timeline file, not a
                // model name (the document carries its own model).
                if (slot == 0)
                    args->scenario_file = arg;
                else
                    return false;
            } else if (slot == 0) {
                args->model = arg;
            } else {
                return false;
            }
        }
    }
    return true;
}

model::ModelConfig
resolveModel(const CliArgs &args, const char *fallback)
{
    const std::string name = args.model.empty() ? fallback : args.model;
    return core::isConfigFile(name)
               ? core::modelFromConfig(core::loadConfigFile(name))
               : model::modelByName(name);
}

hw::WaferConfig
resolveWafer(const CliArgs &args)
{
    return args.wafer_file.empty()
               ? hw::WaferConfig::paperDefault()
               : core::waferFromConfig(
                     core::loadConfigFile(args.wafer_file));
}

core::FrameworkOptions
resolveOptions(const CliArgs &args)
{
    core::FrameworkOptions options =
        args.opts_file.empty()
            ? core::FrameworkOptions()
            : core::frameworkOptionsFromConfig(
                  core::loadConfigFile(args.opts_file));
    if (!args.refiner.empty() &&
        !solver::searchEngineFromName(args.refiner,
                                      &options.solver.engine)) {
        std::fprintf(
            stderr,
            "unknown --refiner '%s' "
            "(use none/genetic/annealing/beamtabu/exact/portfolio)\n",
            args.refiner.c_str());
        std::exit(1);
    }
    // The flag is a one-stop deadline: it caps every solve's wall
    // clock (solver.deadline.wall_ms) and, for `serve`, doubles as
    // the per-request queue deadline (serve.deadline_ms). Quantum
    // caps — the deterministic budget — come from the config surface.
    if (args.deadline_ms >= 0) {
        options.solver.deadline.max_wall_ms =
            static_cast<double>(args.deadline_ms);
        options.serve.deadline_ms = args.deadline_ms;
    }
    return options;
}

/// Resolved persistent-tier policy for this invocation: explicit
/// --load/--save flags win; otherwise the --opts file's persist.path
/// (load at start; save at exit when persist.save_on_exit).
struct PersistPlan
{
    std::string load;
    std::string save;
    double period_s = 0.0;  ///< serve mode: seconds between snapshots
};

PersistPlan
persistPlan(const CliArgs &args)
{
    const core::PersistOptions persist = resolveOptions(args).persist;
    PersistPlan plan;
    plan.load = !args.load_path.empty() ? args.load_path : persist.path;
    plan.save = !args.save_path.empty()
                    ? args.save_path
                    : (persist.save_on_exit ? persist.path : "");
    plan.period_s = persist.period_s;
    return plan;
}

/// Best-effort warm start: a missing/corrupt/mismatched snapshot is a
/// cold start with a stderr note, never a failure.
void
tryWarmStart(api::TempService &service, const std::string &path)
{
    if (path.empty())
        return;
    std::string error;
    if (!service.warmStart(path, &error))
        std::fprintf(stderr,
                     "temp_cli: cold start (snapshot '%s': %s)\n",
                     path.c_str(), error.c_str());
}

/// Best-effort snapshot write with a stderr note on failure.
void
trySaveSnapshot(api::TempService &service, const std::string &path)
{
    if (path.empty())
        return;
    std::string error;
    if (!service.saveSnapshot(path, &error))
        std::fprintf(stderr, "temp_cli: snapshot not written: %s\n",
                     error.c_str());
}

/// Prints the per-operator table + step report shared by optimize and
/// faults.
void
printSolverResponse(const api::Response &response)
{
    const solver::SolverResult &result = response.solver;
    std::printf("Per-operator strategies (search %.2f s over %d "
                "candidates, %ld evaluations):\n",
                result.search_time_s, result.candidate_count,
                result.evaluations);
    for (std::size_t i = 0; i < result.per_op_specs.size(); ++i) {
        const char *op = i < response.op_names.size()
                             ? response.op_names[i].c_str()
                             : "?";
        std::printf("  %-10s -> %s\n", op,
                    result.per_op_specs[i].str().c_str());
    }
    const sim::PerfReport &r = result.report;
    std::printf("\nSimulated training step:\n");
    std::printf("  step time           %.1f ms  (grad accum x%d%s)\n",
                r.step_time * 1e3, r.grad_accum,
                r.recompute ? ", activation recompute" : "");
    std::printf("  compute             %.1f ms\n", r.comp_time * 1e3);
    std::printf("  exposed comm        %.1f ms\n", r.exposed_comm * 1e3);
    std::printf("  peak memory/die     %.1f GB %s\n",
                r.peak_mem_bytes / 1e9, r.oom ? "(OOM!)" : "");
    std::printf("  throughput          %.0f tokens/s\n",
                r.throughput_tokens_per_s);
    std::printf("  matrix fill         %ld measured, %ld cache hits\n",
                result.matrix_measurements, result.cache_hits);
    std::printf("  step sims           %ld simulated, %ld cache hits\n",
                result.step_sims, result.step_cache_hits);
}

int
emit(const api::Response &response)
{
    std::printf("%s\n", api::toJson(response).c_str());
    return response.ok && response.report.feasible ? 0 : 1;
}

int
runOptimize(api::TempService &service, const CliArgs &args)
{
    api::OptimizeRequest request{resolveModel(args, "GPT-3 6.7B"),
                                 resolveWafer(args),
                                 resolveOptions(args)};
    const api::Response response = service.run(request);
    if (args.json)
        return emit(response);
    std::printf("TEMP optimize — %s on a %dx%d wafer\n\n",
                request.model.name.c_str(), request.wafer.rows,
                request.wafer.cols);
    if (!response.ok || !response.solver.feasible) {
        std::printf("No feasible strategy found. %s\n",
                    response.error.c_str());
        return 1;
    }
    printSolverResponse(response);
    return 0;
}

int
runBaseline(api::TempService &service, const CliArgs &args)
{
    api::BaselineRequest request{resolveModel(args, "GPT-3 6.7B"),
                                 resolveWafer(args),
                                 resolveOptions(args)};
    if (args.kind == "mega")
        request.kind = baselines::BaselineKind::Megatron1;
    else if (args.kind == "mesp")
        request.kind = baselines::BaselineKind::MegatronSP;
    else if (args.kind == "fsdp")
        request.kind = baselines::BaselineKind::Fsdp;
    else {
        std::fprintf(stderr, "unknown --kind '%s'\n", args.kind.c_str());
        return 1;
    }
    if (args.engine == "smap")
        request.engine = tcme::MappingEngineKind::SMap;
    else if (args.engine == "gmap")
        request.engine = tcme::MappingEngineKind::GMap;
    else if (args.engine == "tcme")
        request.engine = tcme::MappingEngineKind::TCME;
    else {
        std::fprintf(stderr, "unknown --engine '%s'\n",
                     args.engine.c_str());
        return 1;
    }
    const api::Response response = service.run(request);
    if (args.json)
        return emit(response);
    const baselines::TunedBaseline &tuned = response.baseline;
    std::printf("Baseline %s under %s — %s\n",
                baselines::baselineName(request.kind),
                tcme::mappingEngineName(request.engine),
                request.model.name.c_str());
    std::printf("  tuned spec   %s%s\n", tuned.spec.str().c_str(),
                tuned.all_oom ? "  (every configuration OOMs)" : "");
    std::printf("  step time    %.1f ms\n",
                tuned.report.step_time * 1e3);
    std::printf("  peak memory  %.1f GB/die\n",
                tuned.report.peak_mem_bytes / 1e9);
    std::printf("  throughput   %.0f tokens/s\n",
                tuned.report.throughput_tokens_per_s);
    return tuned.all_oom ? 1 : 0;
}

int
runFaults(api::TempService &service, const CliArgs &args)
{
    api::FaultRequest request{resolveModel(args, "Llama2 7B"),
                              resolveWafer(args), resolveOptions(args)};
    request.link_fault_rate = args.link_rate;
    request.core_fault_rate = args.core_rate;
    request.fault_seed = args.seed;
    const api::Response response = service.run(request);
    if (args.json)
        return emit(response);
    std::printf("Fault-aware re-optimisation — %s "
                "(%.0f%% link, %.0f%% core faults, seed %llu)\n\n",
                request.model.name.c_str(), args.link_rate * 100,
                args.core_rate * 100,
                static_cast<unsigned long long>(args.seed));
    std::printf("Usable dies: %d of %d\n", response.usable_dies,
                request.wafer.dieCount());
    if (!response.ok || !response.solver.feasible) {
        std::printf("Unrecoverable: no feasible strategy. %s\n",
                    response.error.c_str());
        return 1;
    }
    printSolverResponse(response);
    return 0;
}

int
runMultiWafer(api::TempService &service, const CliArgs &args)
{
    api::MultiWaferRequest request;
    request.model = resolveModel(args, "GPT-3 504B");
    request.pod.wafer = resolveWafer(args);
    request.pod.wafer_count = args.wafers;
    request.options = resolveOptions(args);
    request.pp = args.pp > 0 ? args.pp : args.wafers;
    request.microbatches = args.micro;
    request.intra_spec.dp = args.dp;
    request.intra_spec.tp = args.tp;
    request.intra_spec.sp = args.sp;
    request.intra_spec.tatp = args.tatp;
    const api::Response response = service.run(request);
    if (args.json)
        return emit(response);
    std::printf("Multi-wafer plan — %s on %d wafers, pp=%d, m=%d, "
                "intra %s\n\n",
                request.model.name.c_str(), args.wafers, request.pp,
                request.microbatches, request.intra_spec.str().c_str());
    if (!response.ok) {
        std::printf("Invalid plan: %s\n", response.error.c_str());
        return 1;
    }
    const sim::PerfReport &r = response.report;
    if (!r.feasible) {
        std::printf("Plan infeasible on this pod.\n");
        return 1;
    }
    std::printf("  stage fabric   %dx%d dies\n",
                response.stage_fabric.rows, response.stage_fabric.cols);
    std::printf("  step time      %.2f s\n", r.step_time);
    std::printf("  bubble         %.1f%%\n",
                100.0 * r.bubble_time / r.step_time);
    std::printf("  peak memory    %.1f GB/die %s\n",
                r.peak_mem_bytes / 1e9, r.oom ? "(OOM!)" : "");
    std::printf("  throughput     %.0f tokens/s\n",
                r.throughput_tokens_per_s);
    return r.oom ? 1 : 0;
}

int
runSweep(api::TempService &service, const CliArgs &args)
{
    const model::ModelConfig model = resolveModel(args, "Llama2 7B");
    const hw::WaferConfig wafer = resolveWafer(args);
    const core::FrameworkOptions options = resolveOptions(args);

    struct Candidate
    {
        const char *label;
        int dp, tp, sp, tatp;
    };
    const std::vector<Candidate> lineup = {
        {"pure DP", 32, 1, 1, 1},        {"TP8 x DP4", 4, 8, 1, 1},
        {"SP8 x DP4", 4, 1, 8, 1},       {"pure TATP", 1, 1, 1, 32},
        {"TATP8 x DP4", 4, 1, 1, 8},     {"TATP16 x TP2", 1, 2, 1, 16},
    };

    struct Row
    {
        std::string label;
        std::string spec;
        api::Response response;
    };
    std::vector<Row> rows;
    for (const Candidate &c : lineup) {
        api::StrategyRequest request{model, wafer, options};
        request.spec.dp = c.dp;
        request.spec.tp = c.tp;
        request.spec.sp = c.sp;
        request.spec.tatp = c.tatp;
        api::Response response = service.run(request);
        if (response.ok && response.report.feasible)
            rows.push_back({c.label, request.spec.str(),
                            std::move(response)});
    }
    api::Response solved =
        service.run(api::OptimizeRequest{model, wafer, options});
    if (solved.ok && solved.solver.feasible)
        rows.push_back({"DLWS solver pick", "(per-op mix)",
                        std::move(solved)});

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.response.report.step_time < b.response.report.step_time;
    });

    if (args.json) {
        std::vector<std::string> entries;
        for (const Row &row : rows)
            entries.push_back(api::JsonObject()
                                  .add("label", row.label)
                                  .add("spec", row.spec)
                                  .addRaw("response",
                                          api::toJson(row.response))
                                  .str());
        std::printf("%s\n", api::JsonObject()
                                .add("kind", "sweep")
                                .add("model", model.name)
                                .addRaw("ranked", api::jsonArray(entries))
                                .str()
                                .c_str());
        return rows.empty() ? 1 : 0;
    }

    std::printf("Strategy sweep — %s on %d dies (ranked, fastest "
                "first)\n\n",
                model.name.c_str(), wafer.dieCount());
    TablePrinter t({"Strategy", "Spec", "Step (ms)", "Mem (GB)",
                    "Exposed comm", "Status"});
    for (const Row &row : rows) {
        const sim::PerfReport &r = row.response.report;
        t.addRow({row.label, row.spec,
                  TablePrinter::fmt(r.step_time * 1e3, 1),
                  TablePrinter::fmt(r.peak_mem_bytes / 1e9, 1),
                  TablePrinter::fmtPct(r.exposed_comm / r.step_time),
                  r.oom ? "OOM" : (r.recompute ? "recompute" : "ok")});
    }
    t.print("Ranked strategies");
    const api::TempService::Stats stats = service.stats();
    std::printf("\nService: %ld requests over %ld framework(s), "
                "%ld cache reuses\n",
                stats.requests, stats.frameworks_built,
                stats.framework_cache_hits);
    return rows.empty() ? 1 : 0;
}

int
runCacheStats(api::TempService &service, const CliArgs &args)
{
    // Warm the whole memo stack with one real solve so the counters
    // describe a working service, then snapshot every layer.
    api::OptimizeRequest warm{resolveModel(args, "GPT-3 6.7B"),
                              resolveWafer(args), resolveOptions(args)};
    const api::Response solve = service.run(warm);
    const api::Response stats = service.run(api::CacheStatsRequest{});

    if (args.json) {
        // One document carrying both: the layers plus the warming
        // solve's eviction-aware accounting.
        std::printf("%s\n",
                    api::JsonObject()
                        .add("kind", "cache-stats")
                        .add("model", warm.model.name)
                        .add("warm_ok", solve.ok)
                        .add("warm_cache_evictions",
                             solve.solver.cache_evictions)
                        .addRaw("response", api::toJson(stats))
                        .str()
                        .c_str());
        return stats.ok && solve.ok ? 0 : 1;
    }

    std::printf("Cache governance — after one optimize of %s\n\n",
                warm.model.name.c_str());
    TablePrinter t({"Layer", "Entries", "Bytes(est)", "Hits", "Misses",
                    "Evictions"});
    for (const api::CacheLayerStats &layer : stats.cache_layers)
        t.addRow({layer.layer, std::to_string(layer.stats.entries),
                  std::to_string(layer.stats.bytes_est),
                  std::to_string(layer.stats.hits),
                  std::to_string(layer.stats.misses),
                  std::to_string(layer.stats.evictions)});
    t.print("Memo layers");
    std::printf("\nSolve: %ld matrix measurements, %ld step sims, "
                "%ld schedule lowerings, %ld evictions\n",
                solve.solver.matrix_measurements, solve.solver.step_sims,
                solve.solver.schedule_lowerings,
                solve.solver.cache_evictions);
    return stats.ok && solve.ok ? 0 : 1;
}

volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void
handleStopSignal(int)
{
    g_stop_requested = 1;
}

int
runServe(api::TempService &service, const CliArgs &args)
{
    serve::ServerOptions options;
    options.host = args.host;
    options.port = args.port;
    options.dispatcher.workers = args.workers;
    options.dispatcher.max_queue = args.max_queue;
    // Per-request queue deadline from the config surface (the --opts
    // file's serve.deadline_ms; 0 = off).
    options.dispatcher.deadline_ms =
        resolveOptions(args).serve.deadline_ms;

    serve::Server server(service, options);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "temp_cli serve: %s\n", error.c_str());
        return 1;
    }
    // Machine-parsable first line (tests bind --port 0 and read the
    // resolved port back from here).
    std::printf("temp_cli serve: listening on %s:%d "
                "(workers=%d, max_queue=%d)\n",
                args.host.c_str(), server.port(), args.workers,
                args.max_queue);
    std::fflush(stdout);

    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    const PersistPlan plan = persistPlan(args);
    double since_save_s = 0.0;
    while (!g_stop_requested) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (plan.save.empty() || plan.period_s <= 0.0)
            continue;
        since_save_s += 0.05;
        if (since_save_s >= plan.period_s) {
            since_save_s = 0.0;
            trySaveSnapshot(service, plan.save);
        }
    }

    server.stop();
    // Snapshot after the drain: every in-flight request has answered,
    // so the file captures the fullest memo state of this process.
    trySaveSnapshot(service, plan.save);
    const serve::DispatchStats stats = server.stats();
    std::fprintf(stderr,
                 "temp_cli serve: drained (accepted=%ld "
                 "coalesced=%ld executed=%ld shed=%ld "
                 "deadline_expired=%ld completed=%ld)\n",
                 stats.accepted, stats.coalesced, stats.executed,
                 stats.shed, stats.deadline_expired, stats.completed);
    return 0;
}

int
runRequest(api::TempService &service, const CliArgs &args)
{
    std::string text;
    if (args.request_file.empty() || args.request_file == "-") {
        std::stringstream buffer;
        buffer << std::cin.rdbuf();
        text = buffer.str();
    } else {
        std::ifstream file(args.request_file);
        if (!file) {
            std::fprintf(stderr, "temp_cli request: cannot open '%s'\n",
                         args.request_file.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << file.rdbuf();
        text = buffer.str();
    }

    // Parse locally first either way: a malformed document must exit
    // nonzero without touching the network (or the service).
    api::ParsedRequest parsed;
    std::string error;
    if (!api::parseRequest(text, &parsed, &error)) {
        std::fprintf(stderr, "temp_cli request: %s\n", error.c_str());
        return 1;
    }

    std::string response_json;
    if (!args.connect.empty()) {
        const std::size_t colon = args.connect.rfind(':');
        if (colon == std::string::npos) {
            std::fprintf(stderr,
                         "temp_cli request: --connect wants HOST:PORT, "
                         "got '%s'\n",
                         args.connect.c_str());
            return 1;
        }
        serve::Client client;
        serve::RetryPolicy retry;
        retry.retries = std::max(0, args.retries);
        if (!client.connect(args.connect.substr(0, colon),
                            std::atoi(args.connect.c_str() + colon + 1),
                            retry, &error) ||
            !client.callRaw(text, &response_json, &error)) {
            std::fprintf(stderr, "temp_cli request: %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("%s\n", response_json.c_str());
        common::JsonValue response;
        std::string parse_error;
        if (!common::parseJson(response_json, &response, &parse_error))
            return 1;
        const common::JsonValue *ok = response.find("ok");
        return ok != nullptr && ok->isBool() && ok->bool_value ? 0 : 1;
    }

    api::Response response = service.run(parsed.request);
    response.tenant = parsed.tenant;
    std::printf("%s\n", api::toJson(response).c_str());
    return response.ok ? 0 : 1;
}

int
runScenario(api::TempService &service, const CliArgs &args)
{
    if (args.scenario_file.empty()) {
        std::fprintf(stderr,
                     "usage: temp_cli scenario FILE.json [--json]\n");
        return 1;
    }
    std::ifstream file(args.scenario_file);
    if (!file) {
        std::fprintf(stderr, "temp_cli scenario: cannot open '%s'\n",
                     args.scenario_file.c_str());
        return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();

    api::ParsedRequest parsed;
    std::string error;
    if (!api::parseRequest(buffer.str(), &parsed, &error)) {
        std::fprintf(stderr, "temp_cli scenario: %s\n", error.c_str());
        return 1;
    }
    if (!std::holds_alternative<api::ScenarioRequest>(parsed.request)) {
        std::fprintf(stderr,
                     "temp_cli scenario: '%s' is not a kind:scenario "
                     "document\n",
                     args.scenario_file.c_str());
        return 1;
    }

    api::Response response = service.run(parsed.request);
    response.tenant = parsed.tenant;
    if (args.json) {
        std::printf("%s\n", api::toJson(response).c_str());
        return response.ok ? 0 : 1;
    }

    const api::ScenarioRequest &request =
        std::get<api::ScenarioRequest>(parsed.request);
    std::printf("Scenario replay — %s, %zu event(s), warm_seed=%s\n\n",
                request.model.name.c_str(), request.events.size(),
                request.warm_seed ? "on" : "off");
    if (!response.ok) {
        std::printf("Replay failed: %s\n", response.error.c_str());
        return 1;
    }
    const scenario::ScenarioReport &report = response.scenario;
    TablePrinter t({"#", "Event", "State", "Recovery (ms)", "Step sims",
                    "Matrix meas", "Tokens/s", "Wafers", "How"});
    for (const scenario::EventReport &er : report.events) {
        std::string how;
        if (er.resolved) {
            how = er.warm_seeded ? "warm" : "cold";
            if (er.context_reused)
                how += "+reuse";
            if (er.fallback_to_last_feasible)
                how += " fallback";
        } else {
            how = "-";
        }
        t.addRow({std::to_string(er.index),
                  scenario::eventKindName(er.kind), er.degradation,
                  TablePrinter::fmt(er.recovery_wall_s * 1e3, 1),
                  std::to_string(er.step_sims),
                  std::to_string(er.matrix_measurements),
                  TablePrinter::fmt(er.throughput_after, 0),
                  std::to_string(er.wafer_count), how});
    }
    t.print("Timeline");
    std::printf("\nReplay digest %llu — %ld step sims, %ld matrix "
                "measurements, %d infeasible event(s) (%d explicit "
                "fallback(s)), %.2f s total recovery\n",
                static_cast<unsigned long long>(report.replay_digest),
                report.total_step_sims,
                report.total_matrix_measurements,
                report.infeasible_events, report.fallback_events,
                report.total_wall_s);
    return response.ok ? 0 : 1;
}

int
runSnapshot(api::TempService &service, const CliArgs &args)
{
    const std::string &file = args.snapshot_file;
    std::string error;
    if (file.empty()) {
        std::fprintf(stderr, "usage: temp_cli snapshot "
                             "save|load|info FILE [model]\n");
        return 1;
    }

    if (args.sub == "info") {
        persist::Snapshot snapshot;
        if (!persist::loadSnapshotFile(file, &snapshot, &error)) {
            std::fprintf(stderr, "temp_cli snapshot: %s\n",
                         error.c_str());
            return 1;
        }
        if (args.json) {
            std::vector<std::string> blocks;
            for (const persist::MemoBlock &block : snapshot.blocks)
                blocks.push_back(
                    api::JsonObject()
                        .add("framework_key", block.framework_key)
                        .add("breakdowns",
                             static_cast<long>(block.breakdowns.size()))
                        .add("step_reports",
                             static_cast<long>(
                                 block.step_reports.size()))
                        .add("schedule_tasks",
                             static_cast<long>(
                                 block.schedule_tasks.size()))
                        .str());
            std::printf("%s\n",
                        api::JsonObject()
                            .add("kind", "snapshot-info")
                            .add("file", file)
                            .add("format_version",
                                 static_cast<long>(
                                     persist::kFormatVersion))
                            .addRaw("blocks", api::jsonArray(blocks))
                            .str()
                            .c_str());
            return 0;
        }
        std::printf("Snapshot %s (format v%u, %zu block(s))\n",
                    file.c_str(), persist::kFormatVersion,
                    snapshot.blocks.size());
        for (const persist::MemoBlock &block : snapshot.blocks)
            std::printf("  %zu breakdowns, %zu step reports, %zu "
                        "schedule tasks  [%.40s...]\n",
                        block.breakdowns.size(),
                        block.step_reports.size(),
                        block.schedule_tasks.size(),
                        block.framework_key.c_str());
        return 0;
    }

    if (args.sub == "save") {
        // Warm the memo stack with one real solve, then persist it.
        api::OptimizeRequest request{resolveModel(args, "GPT-3 6.7B"),
                                     resolveWafer(args),
                                     resolveOptions(args)};
        const api::Response response = service.run(request);
        if (!response.ok) {
            std::fprintf(stderr, "temp_cli snapshot: solve failed: "
                                 "%s\n",
                         response.error.c_str());
            return 1;
        }
        if (!service.saveSnapshot(file, &error)) {
            std::fprintf(stderr, "temp_cli snapshot: %s\n",
                         error.c_str());
            return 1;
        }
        if (args.json)
            return emit(response);
        std::printf("Snapshot written to %s (after one optimize of "
                    "%s: %ld matrix measurements, %ld step sims)\n",
                    file.c_str(), request.model.name.c_str(),
                    response.solver.matrix_measurements,
                    response.solver.step_sims);
        return 0;
    }

    if (args.sub == "load") {
        if (!service.warmStart(file, &error)) {
            std::fprintf(stderr, "temp_cli snapshot: %s\n",
                         error.c_str());
            return 1;
        }
        api::OptimizeRequest request{resolveModel(args, "GPT-3 6.7B"),
                                     resolveWafer(args),
                                     resolveOptions(args)};
        const api::Response response = service.run(request);
        const api::TempService::PersistStats persist_stats =
            service.persistStats();
        if (args.json) {
            // The optimize response plus the warm-start counters the
            // CI smoke asserts on, as one document.
            std::printf(
                "%s\n",
                api::JsonObject()
                    .add("kind", "snapshot-load")
                    .add("blocks_staged", persist_stats.blocks_staged)
                    .add("frameworks_warmed",
                         persist_stats.frameworks_warmed)
                    .addRaw("response", api::toJson(response))
                    .str()
                    .c_str());
            return response.ok ? 0 : 1;
        }
        std::printf("Warm start from %s: %ld block(s) staged, %ld "
                    "framework(s) warmed\n\n",
                    file.c_str(), persist_stats.blocks_staged,
                    persist_stats.frameworks_warmed);
        if (!response.ok || !response.solver.feasible) {
            std::printf("No feasible strategy found. %s\n",
                        response.error.c_str());
            return 1;
        }
        printSolverResponse(response);
        return 0;
    }

    std::fprintf(stderr, "unknown snapshot verb '%s' "
                         "(use save, load or info)\n",
                 args.sub.c_str());
    return 1;
}

}  // namespace

int
main(int argc, char **argv)
{
    CliArgs args;
    if (!parseArgs(argc, argv, &args))
        return usage(argv[0]);

    api::TempService service;
    // The snapshot subcommand manages the persistent tier itself;
    // every other command honours --load/--save and the --opts
    // persist.* keys around its run (serve writes its own snapshots:
    // periodic plus post-drain).
    const bool plain_command = args.command != "snapshot";
    PersistPlan plan;
    if (plain_command) {
        plan = persistPlan(args);
        tryWarmStart(service, plan.load);
    }
    int rc = 1;
    if (args.command == "optimize")
        rc = runOptimize(service, args);
    else if (args.command == "baseline")
        rc = runBaseline(service, args);
    else if (args.command == "faults")
        rc = runFaults(service, args);
    else if (args.command == "multiwafer")
        rc = runMultiWafer(service, args);
    else if (args.command == "sweep")
        rc = runSweep(service, args);
    else if (args.command == "cache-stats")
        rc = runCacheStats(service, args);
    else if (args.command == "serve")
        return runServe(service, args);
    else if (args.command == "request")
        rc = runRequest(service, args);
    else if (args.command == "scenario")
        rc = runScenario(service, args);
    else if (args.command == "snapshot")
        rc = runSnapshot(service, args);
    else
        return usage(argv[0]);
    if (plain_command)
        trySaveSnapshot(service, plan.save);
    return rc;
}
